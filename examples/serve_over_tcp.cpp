// The network-facing end of the dataset lifecycle: publish a snapshot,
// start the epoll TCP server on a kernel-assigned loopback port, and talk
// to it over a real socket with the wire client —
//
//   1. a single lookup (hit) and one miss,
//   2. a batch lookup answered from one consistent snapshot version,
//   3. snapshot-version introspection (INFO) before and after a hot swap
//      that happens while the connection stays open,
//   4. a deliberately malformed frame, answered with a *typed* error
//      reply on a connection that keeps working afterwards,
//   5. server-side stats, then a graceful drain.
//
//   $ ./build/examples/serve_over_tcp
#include <cstdio>
#include <memory>
#include <string>

#include "publish/snapshot.h"
#include "serve/geo_service.h"
#include "serve/server.h"
#include "serve/wire.h"

int main() {
  using namespace geoloc;
  using serve::wire::MsgType;
  using serve::wire::Reply;

  // A small hand-built snapshot: three city prefixes.
  const auto build = [](std::uint32_t version) {
    publish::SnapshotBuilder b;
    const struct {
      const char* prefix;
      double lat, lon;
      const char* where;
    } entries[] = {
        {"203.0.113.0/24", 48.86, 2.35, "paris-ixp"},
        {"198.51.100.0/24", 40.71, -74.01, "nyc-ixp"},
        {"192.0.2.0/24", 35.68, 139.69, "tokyo-ixp"},
    };
    for (const auto& e : entries) {
      publish::Record r;
      r.prefix = *net::Prefix::parse(e.prefix);
      r.location = {e.lat, e.lon};
      r.provenance = e.where;
      b.add(std::move(r));
    }
    return publish::Snapshot::from_bytes(b.build(
        publish::SnapshotMeta{.dataset_version = version,
                              .source = "serve_over_tcp example"}));
  };

  serve::GeoService service(build(1));
  serve::Server server(service);  // port 0: kernel-assigned, loopback only
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("server listening on 127.0.0.1:%u (%u workers)\n\n",
              server.port(), server.config().workers);

  serve::wire::TcpClient client;
  if (!client.connect(server.port(), &error)) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }

  // 1. Single lookups: a hit and a miss.
  Reply r;
  const auto lookup = [&](const char* ip) {
    client.send_raw(serve::wire::encode_lookup_request(
        1, *net::IPv4Address::parse(ip), /*now_s=*/0.0));
    client.recv_reply(&r);
    if (r.answer.found) {
      std::printf("lookup %-15s -> (%.2f, %.2f) via %.*s, dataset v%u\n", ip,
                  r.answer.lat_deg, r.answer.lon_deg,
                  static_cast<int>(r.answer.provenance.size()),
                  r.answer.provenance.data(), r.answer.dataset_version);
    } else {
      std::printf("lookup %-15s -> no covering prefix\n", ip);
    }
  };
  lookup("203.0.113.7");
  lookup("10.1.2.3");

  // 2. A batch, answered from one consistent version.
  const std::vector<net::IPv4Address> batch = {
      *net::IPv4Address::parse("198.51.100.9"),
      *net::IPv4Address::parse("192.0.2.200"),
  };
  client.send_raw(serve::wire::encode_batch_request(2, batch, 0.0));
  client.recv_reply(&r);
  std::printf("batch of %zu -> %zu answers, all from dataset v%u\n\n",
              batch.size(), r.batch.size(),
              r.batch.empty() ? 0 : r.batch[0].dataset_version);

  // 3. INFO, then a hot swap while this connection stays open.
  client.send_raw(serve::wire::encode_info_request(3));
  client.recv_reply(&r);
  std::printf("INFO: serving dataset v%u, %llu entries\n", r.info.dataset_version,
              static_cast<unsigned long long>(r.info.entries));
  service.publish(build(2));
  client.send_raw(serve::wire::encode_info_request(4));
  client.recv_reply(&r);
  std::printf("INFO after hot swap (same connection): dataset v%u\n\n",
              r.info.dataset_version);

  // 4. A deliberately malformed frame: unknown message type 0x7F. The
  //    server answers with a typed error instead of dropping the
  //    connection — and the connection still works afterwards.
  const std::byte junk[] = {std::byte{0x7F}, std::byte{5}, std::byte{0},
                            std::byte{0}, std::byte{0}};
  client.send_frame(junk);
  client.recv_reply(&r);
  std::printf("malformed frame -> typed error reply: code %u (request id %u)\n",
              static_cast<unsigned>(r.error), r.request_id);
  lookup("192.0.2.200");

  // 5. Server-side stats, then a graceful drain.
  client.send_raw(serve::wire::encode_stats_request(6));
  client.recv_reply(&r);
  std::printf("\nSTATS: %llu frames, %llu lookups, %llu malformed, "
              "%llu conns accepted\n",
              static_cast<unsigned long long>(r.stats.frames),
              static_cast<unsigned long long>(r.stats.lookups),
              static_cast<unsigned long long>(r.stats.malformed),
              static_cast<unsigned long long>(r.stats.conns_accepted));
  server.stop();
  std::printf("server drained and stopped\n");
  return 0;
}
