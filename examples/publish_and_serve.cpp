// The full dataset lifecycle on the miniature scenario:
//
//   1. run a geolocation campaign and compile the results,
//   2. publish them as versioned snapshot v1 (write + re-load the file),
//   3. serve lookups from it,
//   4. advance the simulated clock until entries expire, drain the
//      stale-prefix queue, and re-measure under light platform weather,
//   5. publish v2 and print what changed between the versions.
//
//   $ ./build/examples/publish_and_serve
//
// Deterministic: re-running prints the same numbers.
#include <cstdio>
#include <string>
#include <vector>

#include "atlas/executor.h"
#include "atlas/faults.h"
#include "atlas/platform.h"
#include "eval/publication.h"
#include "publish/compile.h"
#include "publish/diff.h"
#include "publish/snapshot.h"
#include "scenario/presets.h"
#include "serve/geo_service.h"

int main() {
  using namespace geoloc;

  auto config = scenario::small_config();
  config.cache_dir = "";  // example: skip the on-disk measurement cache
  const scenario::Scenario scenario(config);
  std::printf("world: %zu targets, %zu VPs\n", scenario.targets().size(),
              scenario.vps().size());

  // 1. Compile the campaign into records. Short TTLs so the staleness loop
  //    below has something to do within the example's simulated hour.
  publish::CompileOptions opts;
  opts.measured_at_s = 0.0;
  opts.ok_ttl_s = 1'800.0f;       // 30 simulated minutes
  opts.degraded_ttl_s = 900.0f;
  opts.fallback_ttl_s = 600.0f;
  const auto records = publish::compile_entries(scenario, opts);

  // 2. Publish v1: write the snapshot file, re-load it (exercising the
  //    magic/version/CRC validation a consumer would hit), serve from it.
  const std::string path = "publish_and_serve_v1.bin";
  publish::SnapshotBuilder builder;
  builder.add(records);
  std::string error;
  if (!builder.write_file(path,
                          publish::SnapshotMeta{.dataset_version = 1,
                                                .created_at_s = 0.0,
                                                .source = "example campaign"},
                          &error)) {
    std::fprintf(stderr, "write failed: %s\n", error.c_str());
    return 1;
  }
  const auto v1 = publish::Snapshot::load(path, &error);
  if (!v1) {
    std::fprintf(stderr, "load failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("\npublished v1: %zu entries, payload CRC %08x -> %s\n",
              v1->size(), v1->payload_crc(), path.c_str());
  const auto quality = eval::evaluate_snapshot(scenario, *v1);
  std::printf("quality: %zu/%zu covered, median error %.1f km, "
              "%.0f%% city-level\n",
              quality.covered, quality.targets, quality.median_error_km,
              100.0 * quality.city_level_fraction);

  // 3. Serve a few lookups at t=0 (everything fresh).
  serve::GeoService service(v1);
  for (std::size_t i = 0; i < 3 && i < scenario.targets().size(); ++i) {
    const auto& host = scenario.world().host(scenario.targets()[i]);
    const auto a = service.lookup(host.addr, /*now_s=*/0.0);
    std::printf("  %s -> %s  [%s, tier %s, ±%.0f km, %s]\n",
                host.addr.to_string().c_str(),
                geo::to_string(a.location).c_str(),
                std::string(publish::to_string(a.method)).c_str(),
                std::string(core::to_string(a.tier)).c_str(),
                a.confidence_radius_km,
                std::string(a.provenance).c_str());
  }

  // 4. One simulated hour later every entry is past its TTL. Lookups now
  //    flag staleness and feed the re-measurement queue.
  const double now = 3'600.0;
  for (std::size_t i = 0; i < 8 && i < scenario.targets().size(); ++i) {
    (void)service.lookup(scenario.world().host(scenario.targets()[i]).addr,
                         now);
  }
  const auto stale = service.remeasure_queue().drain();
  std::printf("\nat t=%.0fs: %zu prefixes queued stale "
              "(%llu stale hits served)\n",
              now, stale.size(),
              static_cast<unsigned long long>(service.stats().stale_hits));

  const auto requests = serve::plan_remeasurement(scenario, stale,
                                                  /*vps_per_target=*/40);
  atlas::Platform platform(scenario.world(), scenario.latency(), {});
  const atlas::FaultModel weather(scenario.world(),
                                  scenario::drizzle_weather());
  platform.set_fault_model(&weather);
  atlas::CampaignExecutor executor(platform);
  const auto report = executor.execute(requests);
  std::printf("re-measurement: %zu requests, %.1f%% completed under "
              "drizzle weather\n",
              requests.size(), 100.0 * report.success_rate());

  publish::CompileOptions refresh_opts = opts;
  refresh_opts.measured_at_s = now;
  const auto refreshed =
      publish::refresh_entries(scenario, report, refresh_opts);

  // 5. Publish v2 = v1 overlaid with the refreshed entries (the builder
  //    dedups by prefix, last added wins) and diff the versions.
  publish::SnapshotBuilder builder2;
  builder2.add(records);
  builder2.add(refreshed);
  const auto v2 = publish::Snapshot::from_bytes(
      builder2.build(publish::SnapshotMeta{.dataset_version = 2,
                                           .created_at_s = now,
                                           .source = "staleness refresh"}),
      &error);
  if (!v2) {
    std::fprintf(stderr, "v2 build failed: %s\n", error.c_str());
    return 1;
  }
  service.publish(v2);
  std::printf("\npublished v2: %zu entries (%zu refreshed), swap #%llu\n",
              v2->size(), refreshed.size(),
              static_cast<unsigned long long>(service.stats().swaps));

  std::printf("\n%s", publish::format_diff(
                          publish::diff_snapshots(*v1, *v2)).c_str());
  std::remove(path.c_str());
  return 0;
}
