// Walkthrough of the street-level paper's three-tier pipeline (Wang et al.
// NSDI 2011, as replicated by the IMC'23 paper) on a single target,
// narrating what each tier produces and what it costs.
//
//   $ ./build/examples/street_level_walkthrough [target-index]
#include <cstdio>
#include <cstdlib>

#include "core/street_level.h"
#include "eval/metrics.h"
#include "geo/geodesy.h"
#include "scenario/presets.h"

int main(int argc, char** argv) {
  using namespace geoloc;

  auto config = scenario::small_config();
  config.cache_dir = "";
  const scenario::Scenario scenario(config);
  const core::StreetLevel street(scenario);

  std::size_t target_col = 2;
  if (argc > 1) {
    target_col = static_cast<std::size_t>(std::atoi(argv[1])) %
                 scenario.targets().size();
  }
  const sim::Host& target =
      scenario.world().host(scenario.targets()[target_col]);
  std::printf("target #%zu: %s in %s, truth %s\n\n", target_col,
              target.addr.to_string().c_str(),
              scenario.world().place(target.place).name.c_str(),
              geo::to_string(target.true_location).c_str());

  const core::StreetLevelResult r = street.geolocate(target_col);
  if (!r.ok) {
    std::printf("tier 1 found no CBG region — cannot geolocate\n");
    return 1;
  }

  // Tier 1: CBG at 4/9 c from the anchor VPs.
  std::printf("tier 1 (CBG at 4/9 c%s): centroid %s, region radius %.0f km "
              "-> error %.1f km\n",
              r.tier1.used_fallback_soi ? ", fell back to 2/3 c" : "",
              geo::to_string(r.tier1.estimate).c_str(),
              r.tier1.region.radius_km,
              eval::error_km(scenario, target_col, r.tier1.estimate));

  // Tier 2: concentric-circle landmark harvest + traceroute delays.
  auto tier_summary = [&](const char* name, const core::TierOutcome& tier) {
    int usable = 0;
    for (const auto& m : tier.landmarks) usable += m.usable;
    std::printf("%s: %zu circles, %zu sample points, %llu zips geocoded, "
                "%llu websites tested -> %zu landmarks (%d usable)\n",
                name, tier.circles, tier.sample_points,
                static_cast<unsigned long long>(tier.geocode_queries),
                static_cast<unsigned long long>(tier.websites_tested),
                tier.landmarks.size(), usable);
  };
  tier_summary("tier 2 (R=5 km, 10 pts/circle)", r.tier2);
  if (r.tier2.refined.ok) {
    std::printf("        refined region centroid %s (radius %.0f km)\n",
                geo::to_string(r.tier2.refined.estimate).c_str(),
                r.tier2.refined.region.radius_km);
  }
  tier_summary("tier 3 (R=1 km, 36 pts/circle)", r.tier3);

  // Final mapping: the minimum-delay landmark.
  std::printf("\nfinal estimate (tier %d%s): %s -> error %.1f km\n",
              r.tier_reached,
              r.fell_back_to_cbg ? ", CBG fallback — no usable landmark" : "",
              geo::to_string(r.estimate).c_str(),
              eval::error_km(scenario, target_col, r.estimate));

  // What the paper's Figure 6c tracks: the cost of all of this.
  std::printf("cost: %llu traceroutes, %.0f simulated seconds (%.1f min)\n",
              static_cast<unsigned long long>(r.traceroutes),
              r.elapsed_seconds, r.elapsed_seconds / 60.0);

  // And the oracle for context.
  if (const auto oracle = street.closest_landmark_oracle(target_col)) {
    std::printf("closest-landmark oracle error: %.1f km\n",
                eval::error_km(scenario, target_col, *oracle));
  } else {
    std::printf("no passing landmark within 1000 km of this target\n");
  }
  return 0;
}
