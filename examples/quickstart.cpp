// Quickstart: build a (miniature) simulated Internet, run the two classic
// latency-based geolocation techniques against one target, and compare
// their answers with the ground truth.
//
//   $ ./build/examples/quickstart
//
// Everything is deterministic: re-running prints the same numbers.
#include <cstdio>

#include "core/cbg.h"
#include "core/million_scale.h"
#include "core/shortest_ping.h"
#include "eval/metrics.h"
#include "geo/geodesy.h"
#include "scenario/presets.h"

int main() {
  using namespace geoloc;

  // 1. Assemble the world: cities, ASes, anchors (targets), probes (VPs),
  //    a hitlist of /24 representatives, and the sanitisation pass that
  //    removes hosts with bogus coordinates (paper Section 4.3).
  auto config = scenario::small_config();
  config.cache_dir = "";  // quickstart: skip the on-disk measurement cache
  const scenario::Scenario scenario(config);
  std::printf("world: %zu places, %zu hosts, %zu targets, %zu VPs\n",
              scenario.world().places().size(), scenario.world().host_count(),
              scenario.targets().size(), scenario.vps().size());

  // 2. Pick a target and gather the measurement campaign against it. The
  //    scenario exposes the all-VPs-to-all-targets min-RTT matrix that both
  //    replicated papers start from.
  const std::size_t target_col = 0;
  const sim::Host& target =
      scenario.world().host(scenario.targets()[target_col]);
  std::printf("\ntarget: %s in %s (%s) — true location %s\n",
              target.addr.to_string().c_str(),
              scenario.world().place(target.place).name.c_str(),
              std::string(sim::to_string(
                              scenario.world().place(target.place).continent))
                  .c_str(),
              geo::to_string(target.true_location).c_str());

  const core::MillionScale tools(scenario);
  std::vector<std::size_t> all_rows(scenario.vps().size());
  for (std::size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;
  const auto observations = tools.observations(all_rows, target_col);
  std::printf("observations: %zu VPs measured the target\n",
              observations.size());

  // 3. Shortest Ping: the target is wherever the lowest-RTT VP is.
  const auto sp = core::shortest_ping(observations);
  if (sp) {
    std::printf("\nShortest Ping -> %s (min RTT %.2f ms, error %.1f km)\n",
                geo::to_string(sp->estimate).c_str(), sp->min_rtt_ms,
                geo::distance_km(sp->estimate, target.true_location));
  }

  // 4. CBG: intersect the speed-of-Internet constraint disks and take the
  //    centroid of the feasible region.
  const core::CbgResult cbg = core::cbg_geolocate(observations);
  if (cbg.ok) {
    std::printf("CBG           -> %s (region radius %.0f km, error %.1f km)\n",
                geo::to_string(cbg.estimate).c_str(), cbg.region.radius_km,
                geo::distance_km(cbg.estimate, target.true_location));
  }

  // 5. The million-scale VP selection: use only the 10 VPs closest (by
  //    RTT) to the representatives of the target's /24.
  const auto selected = tools.select_vps_by_representatives(target_col, 10);
  const core::CbgResult small = tools.geolocate(selected, target_col);
  if (small.ok) {
    std::printf("CBG, 10 selected VPs -> error %.1f km (%.4f%% of the "
                "measurements)\n",
                tools.error_km(small.estimate, target_col),
                100.0 * 10.0 / static_cast<double>(scenario.vps().size()));
  }

  std::printf("\nNext: examples/street_level_walkthrough for the three-tier "
              "landmark pipeline,\n      examples/vp_selection_planner for "
              "the paper's two-step extension.\n");
  return 0;
}
