// The measurement-budget planner: compares the original million-scale VP
// selection against the IMC'23 two-step extension for a whole target set,
// reporting accuracy and the ping budget each approach needs — the
// trade-off behind the paper's Figures 3b/3c and its "round-based
// geolocation" recommendation (Section 7.2.3).
//
//   $ ./build/examples/vp_selection_planner [first-step-size]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/million_scale.h"
#include "eval/metrics.h"
#include "scenario/presets.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace geoloc;

  auto config = scenario::small_config();
  config.cache_dir = "";
  const scenario::Scenario scenario(config);
  const core::MillionScale tools(scenario);

  int first_step = argc > 1 ? std::atoi(argv[1]) : 50;
  first_step = std::clamp(first_step, 5,
                          static_cast<int>(scenario.vps().size()));

  // Plan A: the original algorithm — every VP probes every target's
  // representatives, then the 10 best probe the target.
  std::vector<double> original_errors;
  std::uint64_t original_pings = core::original_algorithm_pings(scenario);
  for (std::size_t col = 0; col < scenario.targets().size(); ++col) {
    const auto rows = tools.select_vps_by_representatives(col, 10);
    const auto r = tools.geolocate(rows, col);
    if (r.ok) original_errors.push_back(tools.error_km(r.estimate, col));
  }

  // Plan B: the two-step extension with a greedily chosen earth-covering
  // first-step subset.
  const auto coverage = core::greedy_coverage_rows(
      scenario, static_cast<std::size_t>(first_step));
  const core::TwoStepSelector selector(scenario, coverage);
  std::vector<double> two_step_errors;
  std::uint64_t two_step_pings = 0;
  std::size_t failures = 0;
  for (std::size_t col = 0; col < scenario.targets().size(); ++col) {
    const auto o = selector.run(col);
    two_step_pings += o.step1_pings + o.step2_pings + o.final_pings;
    if (!o.ok) {
      ++failures;
      continue;
    }
    two_step_errors.push_back(tools.error_km(o.estimate, col));
  }

  util::TextTable t{"measurement plan comparison (" +
                    std::to_string(scenario.targets().size()) + " targets)"};
  t.header({"Plan", "median error (km)", "city level", "ping measurements"});
  t.row({"original (all VPs probe reps)",
         util::TextTable::num(util::median(original_errors), 1),
         util::TextTable::pct(eval::city_level_fraction(original_errors)),
         std::to_string(original_pings)});
  t.row({"two-step (first step = " + std::to_string(first_step) + ")",
         util::TextTable::num(util::median(two_step_errors), 1),
         util::TextTable::pct(eval::city_level_fraction(two_step_errors)),
         std::to_string(two_step_pings)});
  std::printf("%s", t.render().c_str());
  std::printf("two-step budget: %.1f%% of the original; %zu targets failed "
              "selection\n\n",
              100.0 * static_cast<double>(two_step_pings) /
                  static_cast<double>(original_pings),
              failures);

  std::printf("the first-step subset greedily maximises summed log distance "
              "— its first 10 picks:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, coverage.size());
       ++i) {
    const sim::Host& h =
        scenario.world().host(scenario.vps()[coverage[i]]);
    std::printf("  %2zu. %s (%s)\n", i + 1,
                scenario.world().place(h.place).name.c_str(),
                std::string(sim::to_string(
                                scenario.world().place(h.place).continent))
                    .c_str());
  }
  return 0;
}
