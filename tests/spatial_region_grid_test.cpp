// Byte-identity of the covering-routed CBG sampling grid.
//
// intersect_disks routes each polar-grid point through a spatial:: covering
// of the window disk (classify once per cell, test only boundary
// constraints per point); intersect_disks_reference tests every constraint
// at every point. The covering predicates are conservative proofs, never
// approximations, so the two must agree bit-for-bit on every Region field —
// including the exact feasible sample list and the floating-point centroid.
#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "geo/geodesy.h"
#include "geo/region.h"

namespace geoloc::geo {
namespace {

std::mt19937 rng(2024);

GeoPoint random_point() {
  std::uniform_real_distribution<double> lat(-85.0, 85.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  return GeoPoint{lat(rng), lon(rng)};
}

/// Bitwise equality: NaN-free doubles compared with ==, samples in order.
void expect_identical(const Region& a, const Region& b) {
  ASSERT_EQ(a.empty, b.empty);
  EXPECT_EQ(a.centroid.lat_deg, b.centroid.lat_deg);
  EXPECT_EQ(a.centroid.lon_deg, b.centroid.lon_deg);
  EXPECT_EQ(a.radius_km, b.radius_km);
  EXPECT_EQ(a.area_km2, b.area_km2);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i].lat_deg, b.samples[i].lat_deg);
    EXPECT_EQ(a.samples[i].lon_deg, b.samples[i].lon_deg);
  }
}

void expect_routed_matches_reference(std::span<const Disk> disks,
                                     const RegionOptions& options = {}) {
  expect_identical(intersect_disks(disks, options),
                   intersect_disks_reference(disks, options));
}

TEST(SpatialRegionGrid, EmptyAndSingleDiskInputs) {
  expect_routed_matches_reference({});
  const Disk one{GeoPoint{48.2, 16.37}, 350.0};
  expect_routed_matches_reference(std::vector<Disk>{one});
}

TEST(SpatialRegionGrid, DisjointDisksBothReportEmpty) {
  const std::vector<Disk> disks{{GeoPoint{0.0, 0.0}, 100.0},
                                {GeoPoint{40.0, 90.0}, 100.0}};
  expect_routed_matches_reference(disks);
  EXPECT_TRUE(intersect_disks(disks).empty);
}

TEST(SpatialRegionGrid, ThinLensIntersection) {
  // Two disks whose centres are almost radius-sum apart: the feasible
  // region is a thin lens, exercising the retry-at-double-resolution path.
  const GeoPoint a{10.0, 20.0};
  const GeoPoint b = destination(a, 90.0, 995.0);
  const std::vector<Disk> disks{{a, 500.0}, {b, 500.0}};
  expect_routed_matches_reference(disks);
}

TEST(SpatialRegionGrid, PolarAndAntimeridianWindows) {
  {
    const std::vector<Disk> disks{{GeoPoint{88.5, 10.0}, 600.0},
                                  {GeoPoint{87.0, -120.0}, 700.0}};
    expect_routed_matches_reference(disks);
  }
  {
    const std::vector<Disk> disks{{GeoPoint{-5.0, 179.6}, 400.0},
                                  {GeoPoint{-4.0, -179.2}, 450.0},
                                  {GeoPoint{-6.0, 178.0}, 900.0}};
    expect_routed_matches_reference(disks);
  }
}

TEST(SpatialRegionGrid, RandomConstraintSetsAcrossSizes) {
  for (int trial = 0; trial < 60; ++trial) {
    const GeoPoint anchor = random_point();
    std::uniform_int_distribution<int> n_disks(2, 12);
    std::uniform_real_distribution<double> offset(0.0, 600.0);
    std::uniform_real_distribution<double> bearing(0.0, 360.0);
    std::uniform_real_distribution<double> radius(200.0, 2500.0);
    std::vector<Disk> disks;
    const int n = n_disks(rng);
    for (int i = 0; i < n; ++i) {
      disks.push_back(Disk{destination(anchor, bearing(rng), offset(rng)),
                           radius(rng)});
    }
    expect_routed_matches_reference(disks);
  }
}

TEST(SpatialRegionGrid, NonDefaultResolutionOptions) {
  const std::vector<Disk> disks{{GeoPoint{51.5, -0.1}, 800.0},
                                {GeoPoint{48.9, 2.35}, 700.0},
                                {GeoPoint{52.5, 13.4}, 1200.0}};
  for (const RegionOptions options :
       {RegionOptions{4, 8, 0}, RegionOptions{20, 40, 2},
        RegionOptions{12, 24, 3}}) {
    expect_routed_matches_reference(disks, options);
  }
}

TEST(SpatialRegionGrid, ManyConstraintsTightRegion) {
  // A CBG-like pile of 24 disks all containing a common point; the routed
  // grid must keep the same survivors after prune_dominated.
  const GeoPoint truth{37.77, -122.42};
  std::uniform_real_distribution<double> vp_off(100.0, 4000.0);
  std::uniform_real_distribution<double> bearing(0.0, 360.0);
  std::uniform_real_distribution<double> slack(50.0, 800.0);
  std::vector<Disk> disks;
  for (int i = 0; i < 24; ++i) {
    const GeoPoint vp = destination(truth, bearing(rng), vp_off(rng));
    disks.push_back(Disk{vp, distance_km(vp, truth) + slack(rng)});
  }
  expect_routed_matches_reference(disks);
  EXPECT_FALSE(intersect_disks(disks).empty);
}

}  // namespace
}  // namespace geoloc::geo
