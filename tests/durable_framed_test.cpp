// The durable layer's own contract: XXH64 against published reference
// vectors, atomic replacement semantics, the framed roundtrip, and the
// corruption matrix on the frame itself — truncation at every 1/8 offset,
// bit-flips in header / payload / trailer, torn writes, trailing garbage.
// Every failure must come back as a clean status (and quarantine), never
// as UB — the suite runs under the sanitize-durable and tsan-durable
// presets.
#include "util/durable.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace geoloc::util::durable {
namespace {

namespace fs = std::filesystem;

std::span<const std::byte> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// Fresh per-test scratch directory under the build tree.
class FramedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("geoloc-durable-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::vector<std::byte> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

void write_all(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// -- XXH64 ------------------------------------------------------------------

TEST(Xxh64, MatchesPublishedReferenceVectors) {
  // Reference values from the canonical xxHash implementation.
  EXPECT_EQ(xxh64(as_bytes("")), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(xxh64(as_bytes("a")), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(xxh64(as_bytes("abc")), 0x44BC2CF5AD770999ULL);
  EXPECT_EQ(xxh64(as_bytes("Nobody inspects the spammish repetition")),
            0xFBCEA83C8A378BF1ULL);
}

TEST(Xxh64, SeedChangesTheHashAndLongInputsCoverTheStripedPath) {
  // > 32 bytes exercises the 4-lane striped loop, not just the tail.
  std::string long_input;
  for (int i = 0; i < 1000; ++i) long_input += static_cast<char>('a' + i % 26);
  const std::uint64_t h0 = xxh64(as_bytes(long_input), 0);
  const std::uint64_t h1 = xxh64(as_bytes(long_input), 1);
  EXPECT_NE(h0, h1);
  EXPECT_EQ(h0, xxh64(as_bytes(long_input), 0));  // deterministic

  // Single-bit sensitivity: flipping any one byte changes the hash.
  std::vector<std::byte> mutated(as_bytes(long_input).begin(),
                                 as_bytes(long_input).end());
  mutated[500] ^= std::byte{0x01};
  EXPECT_NE(xxh64(mutated), h0);
}

// -- path helpers -----------------------------------------------------------

TEST(DurablePaths, TmpIsPidSuffixedAndQuarantineIsDotCorrupt) {
  const std::string tmp = tmp_path_for("/x/y/data.bin");
  EXPECT_EQ(tmp.rfind("/x/y/data.bin.tmp.", 0), 0u);
  EXPECT_GT(tmp.size(), std::string("/x/y/data.bin.tmp.").size());
  EXPECT_EQ(quarantine_path_for("/x/y/data.bin"), "/x/y/data.bin.corrupt");
}

// -- atomic writes ----------------------------------------------------------

TEST_F(FramedTest, AtomicWriteRoundtripsAndLeavesNoStagingFile) {
  const std::string p = path("artifact.bin");
  const std::string payload = "hello, durable world";
  std::string error;
  ASSERT_TRUE(atomic_write_file(p, as_bytes(payload), &error)) << error;

  const auto got = read_all(p);
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_EQ(std::memcmp(got.data(), payload.data(), payload.size()), 0);
  EXPECT_FALSE(fs::exists(tmp_path_for(p)));
}

TEST_F(FramedTest, AtomicWriteReplacesExistingContentCompletely) {
  const std::string p = path("artifact.bin");
  ASSERT_TRUE(atomic_write_file(p, as_bytes("a much longer first version")));
  ASSERT_TRUE(atomic_write_file(p, as_bytes("v2")));
  const auto got = read_all(p);
  ASSERT_EQ(got.size(), 2u);  // no remnant of the longer first version
}

TEST_F(FramedTest, AtomicWriteToUnwritableDirectoryFailsWithReason) {
  std::string error;
  EXPECT_FALSE(atomic_write_file(
      (dir_ / "no-such-subdir" / "f.bin").string(), as_bytes("x"), &error));
  EXPECT_FALSE(error.empty());
}

// -- framed roundtrip -------------------------------------------------------

constexpr std::uint64_t kTestMagic = 0x544553544D414749ULL;

std::vector<std::byte> test_payload(std::size_t n) {
  std::vector<std::byte> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::byte>((i * 131 + 17) & 0xFF);
  }
  return payload;
}

TEST_F(FramedTest, FramedRoundtripPreservesPayloadAndVersion) {
  const std::string p = path("frame.bin");
  const auto payload = test_payload(1000);
  std::string error;
  ASSERT_TRUE(write_framed(p, kTestMagic, 7, payload, &error)) << error;
  EXPECT_EQ(fs::file_size(p), kFrameOverheadBytes + payload.size());

  const FramedRead r = read_framed(p, kTestMagic);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.version, 7u);
  EXPECT_EQ(r.payload, payload);
}

TEST_F(FramedTest, EmptyPayloadIsAValidFrame) {
  const std::string p = path("empty.bin");
  ASSERT_TRUE(write_framed(p, kTestMagic, 1, {}));
  const FramedRead r = read_framed(p, kTestMagic);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_TRUE(r.payload.empty());
}

TEST_F(FramedTest, MissingFileIsNotFoundAndNeverQuarantines) {
  const std::string p = path("absent.bin");
  const FramedRead r = read_framed(p, kTestMagic);
  EXPECT_EQ(r.status, ReadStatus::NotFound);
  EXPECT_FALSE(fs::exists(quarantine_path_for(p)));
}

TEST_F(FramedTest, ForeignCallerMagicIsCorrupt) {
  const std::string p = path("foreign.bin");
  ASSERT_TRUE(write_framed(p, kTestMagic, 1, test_payload(64)));
  const FramedRead r = read_framed(p, kTestMagic ^ 1, /*quarantine=*/false);
  EXPECT_EQ(r.status, ReadStatus::Corrupt);
}

// -- the corruption matrix --------------------------------------------------

/// Expect a corrupt read that quarantines, then prove regeneration: the
/// quarantined original is out of the way, a fresh write lands cleanly and
/// the next read succeeds.
void expect_corrupt_then_regenerate(const std::string& p,
                                    std::span<const std::byte> payload) {
  const FramedRead r = read_framed(p, kTestMagic);
  EXPECT_EQ(r.status, ReadStatus::Corrupt) << r.error;
  EXPECT_FALSE(fs::exists(p)) << "corrupt file must be moved aside";
  EXPECT_TRUE(fs::exists(quarantine_path_for(p)));

  ASSERT_TRUE(write_framed(p, kTestMagic, 3, payload));
  const FramedRead again = read_framed(p, kTestMagic);
  ASSERT_TRUE(again.ok()) << again.error;
  EXPECT_TRUE(std::equal(again.payload.begin(), again.payload.end(),
                         payload.begin(), payload.end()));
}

TEST_F(FramedTest, TruncationAtEveryEighthOffsetIsDetected) {
  const auto payload = test_payload(400);
  for (int eighth = 0; eighth < 8; ++eighth) {
    const std::string p =
        path("trunc-" + std::to_string(eighth) + ".bin");
    ASSERT_TRUE(write_framed(p, kTestMagic, 3, payload));
    const auto full = read_all(p);
    const std::size_t cut = full.size() * static_cast<std::size_t>(eighth) / 8;
    write_all(p, std::span<const std::byte>(full).first(cut));
    expect_corrupt_then_regenerate(p, payload);
  }
}

TEST_F(FramedTest, SingleBitFlipsAcrossHeaderPayloadAndTrailerAreDetected) {
  const auto payload = test_payload(256);
  const std::string clean = path("clean.bin");
  ASSERT_TRUE(write_framed(clean, kTestMagic, 3, payload));
  const auto full = read_all(clean);
  ASSERT_EQ(full.size(), kFrameOverheadBytes + payload.size());

  // One flip in every header byte, a spread of payload bytes, and every
  // trailer byte.
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) positions.push_back(i);
  for (std::size_t i = kFrameHeaderBytes; i < full.size() - kFrameTrailerBytes;
       i += 37) {
    positions.push_back(i);
  }
  for (std::size_t i = full.size() - kFrameTrailerBytes; i < full.size(); ++i) {
    positions.push_back(i);
  }
  for (const std::size_t pos : positions) {
    const std::string p = path("flip-" + std::to_string(pos) + ".bin");
    auto flipped = full;
    flipped[pos] ^= std::byte{0x40};
    write_all(p, flipped);
    expect_corrupt_then_regenerate(p, payload);
  }
}

TEST_F(FramedTest, TornWriteMixingOldAndNewFramesIsDetected) {
  // A non-atomic writer that died mid-overwrite would leave the new
  // frame's prefix over the old frame's suffix. The payload hash (or the
  // length check) must catch the seam wherever it lands.
  const auto old_payload = test_payload(300);
  std::vector<std::byte> new_payload = test_payload(300);
  for (auto& b : new_payload) b ^= std::byte{0xFF};

  const std::string old_p = path("old.bin");
  const std::string new_p = path("new.bin");
  ASSERT_TRUE(write_framed(old_p, kTestMagic, 3, old_payload));
  ASSERT_TRUE(write_framed(new_p, kTestMagic, 3, new_payload));
  const auto old_bytes = read_all(old_p);
  const auto new_bytes = read_all(new_p);
  ASSERT_EQ(old_bytes.size(), new_bytes.size());

  for (int eighth = 1; eighth < 8; ++eighth) {
    const std::string p = path("torn-" + std::to_string(eighth) + ".bin");
    const std::size_t seam =
        old_bytes.size() * static_cast<std::size_t>(eighth) / 8;
    std::vector<std::byte> torn(new_bytes.begin(),
                                new_bytes.begin() + static_cast<long>(seam));
    torn.insert(torn.end(), old_bytes.begin() + static_cast<long>(seam),
                old_bytes.end());
    write_all(p, torn);
    expect_corrupt_then_regenerate(p, new_payload);
  }
}

TEST_F(FramedTest, TrailingGarbageAfterTheTrailerIsCorrupt) {
  const std::string p = path("garbage.bin");
  const auto payload = test_payload(64);
  ASSERT_TRUE(write_framed(p, kTestMagic, 3, payload));
  auto full = read_all(p);
  full.push_back(std::byte{0xAB});
  write_all(p, full);
  expect_corrupt_then_regenerate(p, payload);
}

TEST_F(FramedTest, QuarantineCanBeDeclined) {
  const std::string p = path("keep.bin");
  ASSERT_TRUE(write_framed(p, kTestMagic, 3, test_payload(64)));
  auto full = read_all(p);
  full[kFrameHeaderBytes + 10] ^= std::byte{0x01};
  write_all(p, full);

  const FramedRead r = read_framed(p, kTestMagic, /*quarantine_corrupt=*/false);
  EXPECT_EQ(r.status, ReadStatus::Corrupt);
  EXPECT_TRUE(fs::exists(p)) << "declined quarantine must leave the file";
  EXPECT_FALSE(fs::exists(quarantine_path_for(p)));
}

TEST_F(FramedTest, RepeatedQuarantineReplacesTheEarlierEvidence) {
  const std::string p = path("twice.bin");
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(write_framed(p, kTestMagic, 3, test_payload(32)));
    auto full = read_all(p);
    full.back() ^= std::byte{0x01};
    write_all(p, full);
    EXPECT_EQ(read_framed(p, kTestMagic).status, ReadStatus::Corrupt);
  }
  EXPECT_TRUE(fs::exists(quarantine_path_for(p)));
  EXPECT_FALSE(fs::exists(p));
}

// -- payload codecs ---------------------------------------------------------

TEST(PayloadCodec, RoundtripsPodsAndRejectsShortReads) {
  PayloadWriter w;
  w.pod(std::uint64_t{0x1122334455667788ULL});
  w.pod(3.5);
  w.pod(std::uint8_t{9});

  PayloadReader in(w.data());
  std::uint64_t a = 0;
  double b = 0.0;
  std::uint8_t c = 0;
  EXPECT_TRUE(in.pod(a));
  EXPECT_TRUE(in.pod(b));
  EXPECT_TRUE(in.pod(c));
  EXPECT_EQ(a, 0x1122334455667788ULL);
  EXPECT_DOUBLE_EQ(b, 3.5);
  EXPECT_EQ(c, 9);
  EXPECT_TRUE(in.exhausted());

  // One byte past the end: the read fails, ok() latches false, and
  // exhausted() refuses too (a failed reader is never "cleanly done").
  std::uint8_t extra = 0;
  EXPECT_FALSE(in.pod(extra));
  EXPECT_FALSE(in.ok());
  EXPECT_FALSE(in.exhausted());
}

TEST(PayloadCodec, UnconsumedTrailingBytesAreNotExhausted) {
  PayloadWriter w;
  w.pod(std::uint32_t{1});
  w.pod(std::uint32_t{2});
  PayloadReader in(w.data());
  std::uint32_t v = 0;
  EXPECT_TRUE(in.pod(v));
  EXPECT_TRUE(in.ok());
  EXPECT_FALSE(in.exhausted());  // 4 bytes left: schema mismatch, not done
}

}  // namespace
}  // namespace geoloc::util::durable
