// Socket-level chaos/fuzz harness for the epoll server (DESIGN.md §12):
// torn frames, oversized length prefixes, malformed bodies, slow-drip
// senders, abrupt resets, backpressure, admission control, load shedding,
// graceful drain, and lookups racing hot snapshot swaps. The invariant
// throughout: every hostile byte stream produces a typed error reply or a
// clean close — never a crash, a hang, or a torn answer — and the suite is
// run under ASan/UBSan and TSan via the sanitize-server / tsan-server
// presets (ctest label "server").
#include "serve/server.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "publish/snapshot.h"
#include "serve/geo_service.h"
#include "serve/wire.h"
#include "util/rng.h"

namespace geoloc::serve {
namespace {

using namespace std::chrono_literals;
using wire::ErrorCode;
using wire::MsgType;
using wire::Reply;
using wire::TcpClient;

net::IPv4Address addr(const char* text) {
  return *net::IPv4Address::parse(text);
}

/// Snapshot whose entry latitude encodes the dataset version, so any torn
/// read anywhere in the pipeline shows up as version/latitude mismatch.
std::shared_ptr<const publish::Snapshot> make_snapshot(
    std::uint32_t version, std::size_t prefixes = 8) {
  publish::SnapshotBuilder b;
  for (std::size_t i = 0; i < prefixes; ++i) {
    publish::Record r;
    r.prefix = net::Prefix{net::IPv4Address{10, 0, static_cast<uint8_t>(i), 0},
                           24};
    r.location = {static_cast<double>(version), 0.0};
    r.ttl_s = 0.0f;
    r.provenance = "chaos";
    b.add(std::move(r));
  }
  std::string error;
  auto snap = publish::Snapshot::from_bytes(
      b.build(publish::SnapshotMeta{.dataset_version = version,
                                    .source = "chaos harness"}),
      &error);
  EXPECT_NE(snap, nullptr) << error;
  return snap;
}

/// A service + started server with per-test config tweaks.
struct Rig {
  explicit Rig(ServerConfig cfg = {}, std::uint32_t version = 1) {
    service = std::make_unique<GeoService>(make_snapshot(version));
    server = std::make_unique<Server>(*service, cfg);
    std::string error;
    EXPECT_TRUE(server->start(&error)) << error;
  }
  TcpClient client() {
    TcpClient c;
    std::string error;
    EXPECT_TRUE(c.connect(server->port(), &error)) << error;
    return c;
  }
  std::unique_ptr<GeoService> service;
  std::unique_ptr<Server> server;
};

std::span<const std::byte> bytes_of(const std::vector<std::byte>& v) {
  return v;
}

// -- happy paths (the baseline the chaos cases must not disturb) -----------

TEST(ServeServer, LookupRoundTrip) {
  Rig rig;
  TcpClient c = rig.client();
  ASSERT_TRUE(c.send_raw(wire::encode_lookup_request(7, addr("10.0.1.9"),
                                                     /*now_s=*/0.0)));
  Reply r;
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::LookupReply);
  EXPECT_EQ(r.request_id, 7u);
  EXPECT_TRUE(r.answer.found);
  EXPECT_EQ(r.answer.dataset_version, 1u);
  EXPECT_EQ(r.answer.lat_deg, 1.0);
  EXPECT_EQ(r.answer.provenance, "chaos");
  EXPECT_EQ(r.answer.prefix, *net::Prefix::parse("10.0.1.0/24"));

  // A miss is found=false, not an error.
  ASSERT_TRUE(c.send_raw(wire::encode_lookup_request(8, addr("192.0.2.1"),
                                                     0.0)));
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.request_id, 8u);
  EXPECT_FALSE(r.answer.found);
}

TEST(ServeServer, PipelinedRequestsAnswerInOrder) {
  Rig rig;
  TcpClient c = rig.client();
  std::vector<std::byte> burst;
  constexpr std::uint32_t kN = 64;
  for (std::uint32_t i = 0; i < kN; ++i) {
    const auto f = wire::encode_lookup_request(
        i, addr(i % 2 == 0 ? "10.0.0.1" : "203.0.113.5"), 0.0);
    burst.insert(burst.end(), f.begin(), f.end());
  }
  ASSERT_TRUE(c.send_raw(burst));
  for (std::uint32_t i = 0; i < kN; ++i) {
    Reply r;
    ASSERT_TRUE(c.recv_reply(&r)) << "reply " << i;
    EXPECT_EQ(r.request_id, i);
    EXPECT_EQ(r.answer.found, i % 2 == 0);
  }
}

TEST(ServeServer, BatchInfoAndStats) {
  Rig rig;
  TcpClient c = rig.client();
  const std::vector<net::IPv4Address> addrs = {
      addr("10.0.0.1"), addr("10.0.3.200"), addr("198.51.100.1")};
  ASSERT_TRUE(c.send_raw(wire::encode_batch_request(21, addrs, 0.0)));
  Reply r;
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::BatchReply);
  ASSERT_EQ(r.batch.size(), 3u);
  EXPECT_TRUE(r.batch[0].found);
  EXPECT_TRUE(r.batch[1].found);
  EXPECT_FALSE(r.batch[2].found);
  // One consistent snapshot version for the whole batch.
  EXPECT_EQ(r.batch[0].dataset_version, r.batch[1].dataset_version);

  ASSERT_TRUE(c.send_raw(wire::encode_info_request(22)));
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::InfoReply);
  EXPECT_TRUE(r.info.has_snapshot);
  EXPECT_FALSE(r.info.draining);
  EXPECT_EQ(r.info.dataset_version, 1u);
  EXPECT_EQ(r.info.entries, 8u);

  ASSERT_TRUE(c.send_raw(wire::encode_stats_request(23)));
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::StatsReply);
  EXPECT_GE(r.stats.lookups, 3u);  // the batch
  EXPECT_EQ(r.stats.conns_accepted, 1u);
  EXPECT_EQ(r.stats.malformed, 0u);
}

TEST(ServeServer, EmptyBatchIsAnswered) {
  Rig rig;
  TcpClient c = rig.client();
  ASSERT_TRUE(c.send_raw(wire::encode_batch_request(1, {}, 0.0)));
  Reply r;
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::BatchReply);
  EXPECT_TRUE(r.batch.empty());
}

// -- malformed input: typed errors, never crashes --------------------------

TEST(ServeServer, UnknownTypeGetsTypedErrorAndConnectionSurvives) {
  Rig rig;
  TcpClient c = rig.client();
  const std::byte payload[] = {std::byte{0x55}, std::byte{1}, std::byte{0},
                               std::byte{0}, std::byte{0}};
  ASSERT_TRUE(c.send_frame(payload));
  Reply r;
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::ErrorReply);
  EXPECT_EQ(r.error, ErrorCode::UnknownType);
  EXPECT_EQ(r.request_id, 1u);

  // The frame boundary held, so the connection still works.
  ASSERT_TRUE(c.send_raw(wire::encode_lookup_request(2, addr("10.0.0.1"),
                                                     0.0)));
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::LookupReply);
  EXPECT_EQ(r.request_id, 2u);
}

TEST(ServeServer, ShortAndOverlongBodiesAreMalformed) {
  Rig rig;
  TcpClient c = rig.client();
  // Too short for even the payload header.
  const std::byte stub[] = {std::byte{0x01}, std::byte{9}};
  ASSERT_TRUE(c.send_frame(stub));
  Reply r;
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::ErrorReply);
  EXPECT_EQ(r.error, ErrorCode::Malformed);
  EXPECT_EQ(r.request_id, 0u);  // id unrecoverable

  // A lookup with trailing junk: the id parses, the body is rejected.
  auto frame = wire::encode_lookup_request(3, addr("10.0.0.1"), 0.0);
  frame.push_back(std::byte{0xAA});
  std::uint32_t len = 0;
  std::memcpy(&len, frame.data(), sizeof len);
  ++len;
  std::memcpy(frame.data(), &len, sizeof len);
  ASSERT_TRUE(c.send_raw(frame));
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.error, ErrorCode::Malformed);
  EXPECT_EQ(r.request_id, 3u);

  // Still alive after both.
  ASSERT_TRUE(c.send_raw(wire::encode_lookup_request(4, addr("10.0.0.1"),
                                                     0.0)));
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::LookupReply);
  EXPECT_GE(rig.server->stats().malformed, 2u);
}

TEST(ServeServer, LyingBatchCountIsMalformedNotAllocation) {
  Rig rig;
  TcpClient c = rig.client();
  // Declares 2^28 addresses but carries none: must be rejected before any
  // allocation happens.
  util::durable::PayloadWriter w;
  w.pod(static_cast<std::uint8_t>(MsgType::BatchReq));
  w.pod(std::uint32_t{11});
  w.pod(0.0);  // now_s
  w.pod(std::uint32_t{1u << 28});
  ASSERT_TRUE(c.send_frame(w.data()));
  Reply r;
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.error, ErrorCode::Malformed);
}

TEST(ServeServer, BatchAboveLimitGetsBatchTooLarge) {
  ServerConfig cfg;
  cfg.max_batch = 4;
  Rig rig(cfg);
  TcpClient c = rig.client();
  const std::vector<net::IPv4Address> addrs(8, addr("10.0.0.1"));
  ASSERT_TRUE(c.send_raw(wire::encode_batch_request(5, addrs, 0.0)));
  Reply r;
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.error, ErrorCode::BatchTooLarge);
  EXPECT_EQ(r.request_id, 5u);
}

TEST(ServeServer, OversizedLengthPrefixIsFatalButTyped) {
  ServerConfig cfg;
  cfg.max_frame_bytes = 1024;
  Rig rig(cfg);
  TcpClient c = rig.client();
  const std::uint32_t len = 1 << 30;
  std::vector<std::byte> prefix(4);
  std::memcpy(prefix.data(), &len, sizeof len);
  ASSERT_TRUE(c.send_raw(prefix));
  Reply r;
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::ErrorReply);
  EXPECT_EQ(r.error, ErrorCode::FrameTooLarge);
  // Framing is unrecoverable: the server closes after the typed reply.
  EXPECT_TRUE(c.recv_eof(2000));
}

TEST(ServeServer, TornFrameThenCloseIsClean) {
  Rig rig;
  {
    TcpClient c = rig.client();
    const auto frame = wire::encode_lookup_request(1, addr("10.0.0.1"), 0.0);
    ASSERT_TRUE(
        c.send_raw(bytes_of(frame).subspan(0, frame.size() - 3)));
    c.close();
  }
  // The server noticed the close; a fresh connection is unaffected.
  TcpClient c2 = rig.client();
  ASSERT_TRUE(c2.send_raw(wire::encode_lookup_request(2, addr("10.0.0.1"),
                                                      0.0)));
  Reply r;
  ASSERT_TRUE(c2.recv_reply(&r));
  EXPECT_TRUE(r.answer.found);
}

TEST(ServeServer, AbruptResetMidRequestIsSurvived) {
  Rig rig;
  for (int i = 0; i < 8; ++i) {
    TcpClient c = rig.client();
    const auto frame = wire::encode_lookup_request(1, addr("10.0.0.1"), 0.0);
    ASSERT_TRUE(c.send_raw(bytes_of(frame).subspan(0, 5)));
    c.reset();  // RST, not FIN
  }
  TcpClient c = rig.client();
  ASSERT_TRUE(c.send_raw(wire::encode_lookup_request(2, addr("10.0.0.1"),
                                                     0.0)));
  Reply r;
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_TRUE(r.answer.found);
}

// -- deadlines: slowloris defense ------------------------------------------

TEST(ServeServer, SlowDripSenderIsClosedByReadDeadline) {
  ServerConfig cfg;
  cfg.read_deadline_ms = 150;
  Rig rig(cfg);
  TcpClient c = rig.client();
  const auto frame = wire::encode_lookup_request(1, addr("10.0.0.1"), 0.0);
  const auto start = std::chrono::steady_clock::now();
  // Drip one byte every 40 ms: each byte is activity, but never a whole
  // frame. The deadline is measured from the last byte, so the close
  // lands ~150-300 ms after the drip stalls.
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(c.send_raw(bytes_of(frame).subspan(i, 1)));
    std::this_thread::sleep_for(40ms);
  }
  EXPECT_TRUE(c.recv_eof(5000)) << "read deadline never fired";
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 3s);
  EXPECT_GE(rig.server->stats().deadline_closed, 1u);
}

TEST(ServeServer, IdleConnectionIsReaped) {
  ServerConfig cfg;
  cfg.read_deadline_ms = 120;
  Rig rig(cfg);
  TcpClient c = rig.client();
  EXPECT_TRUE(c.recv_eof(5000));
  EXPECT_GE(rig.server->stats().deadline_closed, 1u);
}

TEST(ServeServer, ClientThatNeverReadsIsClosedByWriteDeadline) {
  ServerConfig cfg;
  cfg.read_deadline_ms = 10'000;  // isolate the write deadline
  cfg.write_deadline_ms = 200;
  cfg.max_output_queue_bytes = 32 * 1024;
  Rig rig(cfg);
  TcpClient c = rig.client();
  // Ask for far more reply bytes than the kernel buffers will absorb and
  // never read a single one (recv_eof would count as draining): the flush
  // stalls and the write deadline must fire. Detected via server stats,
  // since the client deliberately keeps its socket untouched.
  // ~24 MB of replies: far past what loopback kernel buffers can absorb,
  // so the flush genuinely stalls. (The burst send itself may block until
  // the server's deadline close unblocks it — also part of the test.)
  std::vector<net::IPv4Address> addrs(2000, addr("10.0.0.1"));
  std::vector<std::byte> burst;
  for (std::uint32_t i = 0; i < 300; ++i) {
    const auto f = wire::encode_batch_request(i, addrs, 0.0);
    burst.insert(burst.end(), f.begin(), f.end());
  }
  (void)c.send_raw(burst);  // may fail midway once the server closes: fine
  // Generous window: under TSan on a loaded host the server needs real CPU
  // time to fill the loopback buffers before the flush can stall. What we
  // assert is that the deadline fires at all, not how fast we observe it.
  const auto start = std::chrono::steady_clock::now();
  while (rig.server->stats().deadline_closed == 0 &&
         std::chrono::steady_clock::now() - start < 30s) {
    std::this_thread::sleep_for(20ms);
  }
  EXPECT_GE(rig.server->stats().deadline_closed, 1u)
      << "write deadline never fired";
}

// -- admission control and load shedding -----------------------------------

TEST(ServeServer, ConnectionsPastAdmissionLimitAreShedWithTypedReply) {
  ServerConfig cfg;
  cfg.max_connections = 2;
  Rig rig(cfg);
  TcpClient a = rig.client();
  TcpClient b = rig.client();
  // Make sure both are fully admitted before the third knocks.
  Reply r;
  ASSERT_TRUE(a.send_raw(wire::encode_info_request(1)));
  ASSERT_TRUE(a.recv_reply(&r));
  ASSERT_TRUE(b.send_raw(wire::encode_info_request(2)));
  ASSERT_TRUE(b.recv_reply(&r));

  TcpClient over = rig.client();
  ASSERT_TRUE(over.recv_reply(&r));
  EXPECT_EQ(r.type, MsgType::ErrorReply);
  EXPECT_EQ(r.error, ErrorCode::Overloaded);
  EXPECT_TRUE(over.recv_eof(2000));
  EXPECT_EQ(rig.server->stats().conns_shed, 1u);

  // Admitted connections are unaffected.
  ASSERT_TRUE(a.send_raw(wire::encode_lookup_request(3, addr("10.0.0.1"),
                                                     0.0)));
  ASSERT_TRUE(a.recv_reply(&r));
  EXPECT_TRUE(r.answer.found);

  // Closing one admitted connection frees a slot. The worker reaps the
  // closed fd asynchronously, so knock until admitted: a knock that lands
  // before the reap gets the typed OVERLOADED reply and we try again.
  b.close();
  bool admitted = false;
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  while (!admitted && std::chrono::steady_clock::now() < give_up) {
    TcpClient fresh = rig.client();
    ASSERT_TRUE(fresh.send_raw(
        wire::encode_lookup_request(4, addr("10.0.0.1"), 0.0)));
    if (fresh.recv_reply(&r) && r.type == MsgType::LookupReply) {
      admitted = true;
      break;
    }
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_TRUE(admitted) << "slot never freed after closing an admitted conn";
}

TEST(ServeServer, OverloadShedsRequestsInsteadOfBuffering) {
  ServerConfig cfg;
  cfg.max_outstanding_bytes = 8 * 1024;  // global shed threshold
  cfg.max_output_queue_bytes = 64 * 1024;
  cfg.write_deadline_ms = 10'000;  // the test drains before any deadline
  cfg.read_deadline_ms = 10'000;
  Rig rig(cfg);
  TcpClient c = rig.client();
  // Pipeline many batch requests without reading a byte: replies queue up,
  // cross the threshold, and the tail must be shed with OVERLOADED.
  constexpr std::uint32_t kRequests = 200;
  std::vector<net::IPv4Address> addrs(512, addr("10.0.0.1"));
  std::vector<std::byte> burst;
  for (std::uint32_t i = 0; i < kRequests; ++i) {
    const auto f = wire::encode_batch_request(i, addrs, 0.0);
    burst.insert(burst.end(), f.begin(), f.end());
  }
  ASSERT_TRUE(c.send_raw(burst));
  c.shutdown_write();

  // Now drain: every request must be answered — served or shed, never
  // dropped, never hung.
  std::uint32_t served = 0;
  std::uint32_t shed = 0;
  for (std::uint32_t i = 0; i < kRequests; ++i) {
    Reply r;
    ASSERT_TRUE(c.recv_reply(&r, 10'000)) << "reply " << i << " missing";
    EXPECT_EQ(r.request_id, i);
    if (r.type == MsgType::BatchReply) {
      ASSERT_EQ(r.batch.size(), addrs.size());
      ++served;
    } else {
      ASSERT_EQ(r.type, MsgType::ErrorReply);
      EXPECT_EQ(r.error, ErrorCode::Overloaded);
      ++shed;
    }
  }
  EXPECT_TRUE(c.recv_eof(2000));  // half-close: server closes when done
  EXPECT_GT(served, 0u);
  EXPECT_GT(shed, 0u) << "threshold never tripped";
  EXPECT_EQ(served + shed, kRequests);
  EXPECT_EQ(rig.server->stats().shed_requests, shed);
}

// -- graceful drain --------------------------------------------------------

TEST(ServeServer, GracefulDrainFlushesInFlightReplies) {
  Rig rig;
  TcpClient c = rig.client();
  std::vector<std::byte> burst;
  constexpr std::uint32_t kN = 32;
  for (std::uint32_t i = 0; i < kN; ++i) {
    const auto f = wire::encode_lookup_request(i, addr("10.0.0.1"), 0.0);
    burst.insert(burst.end(), f.begin(), f.end());
  }
  ASSERT_TRUE(c.send_raw(burst));
  // Give the worker a moment to buffer the burst, then stop.
  std::this_thread::sleep_for(50ms);
  rig.server->stop();
  EXPECT_FALSE(rig.server->running());

  // Every fully-received request was answered before the close.
  std::uint32_t replies = 0;
  for (;;) {
    Reply r;
    bool eof = false;
    if (!c.recv_reply(&r, 2000, &eof)) {
      EXPECT_TRUE(eof) << "connection hung instead of closing";
      break;
    }
    EXPECT_EQ(r.type, MsgType::LookupReply);
    ++replies;
  }
  EXPECT_EQ(replies, kN);
}

TEST(ServeServer, StoppedServerRefusesNewConnections) {
  Rig rig;
  const std::uint16_t port = rig.server->port();
  rig.server->stop();
  TcpClient c;
  std::string error;
  EXPECT_FALSE(c.connect(port, &error));
}

// -- hot swaps under fire --------------------------------------------------

TEST(ServeServer, LookupsNeverTearAcrossHotSwaps) {
  Rig rig;
  auto v1 = make_snapshot(1);
  auto v2 = make_snapshot(2);
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      TcpClient c;
      std::string error;
      if (!c.connect(rig.server->port(), &error)) {
        torn.fetch_add(1000);
        return;
      }
      std::uint32_t id = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ASSERT_TRUE(c.send_raw(
            wire::encode_lookup_request(++id, addr("10.0.2.2"), 0.0)));
        Reply r;
        if (!c.recv_reply(&r, 5000)) {
          torn.fetch_add(1000);  // a hang or close here is a failure
          return;
        }
        // The invariant: whatever version answered, its latitude agrees.
        if (!r.answer.found ||
            r.answer.lat_deg !=
                static_cast<double>(r.answer.dataset_version)) {
          torn.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    rig.service->publish(i % 2 == 0 ? v2 : v1);
    if (i % 50 == 0) std::this_thread::sleep_for(1ms);
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GE(rig.service->stats().swaps, 500u);
}

// -- fuzz ------------------------------------------------------------------

TEST(ServeServer, RandomGarbageNeverCrashesOrHangs) {
  ServerConfig cfg;
  cfg.max_frame_bytes = 64 * 1024;
  cfg.read_deadline_ms = 2000;
  Rig rig(cfg);
  util::Pcg32 gen(20230815);
  for (int round = 0; round < 60; ++round) {
    TcpClient c = rig.client();
    const std::size_t len = 1 + gen.bounded(512);
    std::vector<std::byte> garbage(len);
    for (auto& b : garbage) {
      b = std::byte{static_cast<std::uint8_t>(gen.bounded(256))};
    }
    // A third of the rounds lead with a plausible small length prefix so
    // the garbage lands in the body parser, not just the framer.
    if (round % 3 == 0 && len >= 4) {
      const std::uint32_t plausible = gen.bounded(32);
      std::memcpy(garbage.data(), &plausible, sizeof plausible);
    }
    if (!c.send_raw(garbage)) continue;  // server already closed us: fine
    switch (round % 4) {
      case 0: c.close(); break;
      case 1: c.reset(); break;
      case 2: c.shutdown_write(); (void)c.recv_eof(4000); break;
      default: {
        Reply r;
        (void)c.recv_reply(&r, 200);  // may or may not be a parseable frame
        c.close();
        break;
      }
    }
  }
  // The server is still fully functional.
  TcpClient c = rig.client();
  ASSERT_TRUE(c.send_raw(wire::encode_lookup_request(1, addr("10.0.0.1"),
                                                     0.0)));
  Reply r;
  ASSERT_TRUE(c.recv_reply(&r));
  EXPECT_TRUE(r.answer.found);
}

// -- decoder unit coverage (no sockets) ------------------------------------

TEST(FrameDecoder, ReassemblesByteAtATime) {
  const auto frame = wire::encode_lookup_request(9, addr("10.0.0.1"), 2.5);
  wire::FrameDecoder d;
  std::span<const std::byte> payload;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_EQ(d.next(&payload), wire::FrameDecoder::Status::NeedMore);
    d.feed(bytes_of(frame).subspan(i, 1));
  }
  ASSERT_EQ(d.next(&payload), wire::FrameDecoder::Status::Frame);
  wire::Request req;
  ASSERT_EQ(wire::parse_request(payload, 16, &req), wire::ParseStatus::Ok);
  EXPECT_EQ(req.type, MsgType::LookupReq);
  EXPECT_EQ(req.request_id, 9u);
  EXPECT_EQ(req.address, addr("10.0.0.1"));
  EXPECT_EQ(req.now_s, 2.5);
  EXPECT_EQ(d.next(&payload), wire::FrameDecoder::Status::NeedMore);
}

TEST(FrameDecoder, PoisonsOnOversizedLengthAndStopsBuffering) {
  wire::FrameDecoder d(/*max_payload=*/64);
  const std::uint32_t len = 65;
  std::byte prefix[4];
  std::memcpy(prefix, &len, sizeof len);
  d.feed(prefix);
  std::span<const std::byte> payload;
  EXPECT_EQ(d.next(&payload), wire::FrameDecoder::Status::TooLarge);
  EXPECT_TRUE(d.poisoned());
  // Poisoned decoders discard further input instead of buffering it.
  const std::vector<std::byte> junk(1024);
  d.feed(junk);
  EXPECT_EQ(d.next(&payload), wire::FrameDecoder::Status::TooLarge);
  EXPECT_LE(d.buffered(), 4u);
}

TEST(FrameDecoder, ManyPipelinedFramesInOneFeed) {
  std::vector<std::byte> stream;
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto f = wire::encode_info_request(i);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  wire::FrameDecoder d;
  d.feed(stream);
  std::span<const std::byte> payload;
  for (std::uint32_t i = 0; i < 10; ++i) {
    ASSERT_EQ(d.next(&payload), wire::FrameDecoder::Status::Frame);
    wire::Request req;
    ASSERT_EQ(wire::parse_request(payload, 16, &req), wire::ParseStatus::Ok);
    EXPECT_EQ(req.request_id, i);
  }
  EXPECT_EQ(d.next(&payload), wire::FrameDecoder::Status::NeedMore);
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(WireCodec, AnswerRoundTripsThroughBatchReply) {
  Answer a;
  a.found = true;
  a.stale = true;
  a.prefix = *net::Prefix::parse("198.18.0.0/15");
  a.location = {48.85, 2.35};
  a.method = publish::Method::StreetLevel;
  a.tier = core::CbgVerdict::Degraded;
  a.confidence_radius_km = 12.5f;
  a.age_s = 3600.0;
  a.dataset_version = 42;
  const std::string prov(300, 'p');  // longer than the wire cap
  a.provenance = prov;

  std::vector<std::byte> frame;
  wire::encode_batch_reply(frame, 77, std::span<const Answer>(&a, 1));
  wire::FrameDecoder d;
  d.feed(frame);
  std::span<const std::byte> payload;
  ASSERT_EQ(d.next(&payload), wire::FrameDecoder::Status::Frame);
  Reply r;
  ASSERT_TRUE(wire::parse_reply(payload, &r));
  EXPECT_EQ(r.request_id, 77u);
  ASSERT_EQ(r.batch.size(), 1u);
  const wire::WireAnswer& wa = r.batch[0];
  EXPECT_TRUE(wa.found);
  EXPECT_TRUE(wa.stale);
  EXPECT_EQ(wa.prefix, a.prefix);
  EXPECT_EQ(wa.lat_deg, 48.85);
  EXPECT_EQ(wa.dataset_version, 42u);
  EXPECT_EQ(wa.provenance, prov.substr(0, wire::kMaxWireProvenance));
}

}  // namespace
}  // namespace geoloc::serve
