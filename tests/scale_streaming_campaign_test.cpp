// Streaming million-scale campaign vs the dense pipeline (DESIGN.md §14).
//
// run_streaming_campaign executes MillionScale's algorithm — rep-based VP
// selection, final pings, CBG — against tile sources instead of dense
// matrices. With the scenario's own campaigns and the identity
// target→rep-column mapping the two pipelines must agree bitwise: same
// selected rows per target, same per-target errors, at every tile shape and
// thread count. streamed_all_vp_errors is held to the same standard against
// eval::all_vp_errors.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/million_scale.h"
#include "core/streaming_campaign.h"
#include "eval/experiments.h"
#include "scenario/tile_source.h"
#include "test_scenario.h"
#include "util/parallel.h"

namespace geoloc {
namespace {

using scenario::RttTileSource;
using scenario::TileShape;

struct ThreadGuard {
  ThreadGuard() = default;
  ~ThreadGuard() { util::set_thread_count(0); }
};

/// Dense per-target outcome of the original algorithm: selected rows and
/// the resulting CBG error (-1 when CBG failed).
struct DenseOutcome {
  std::vector<std::vector<std::size_t>> rows;
  std::vector<double> errors_km;
};

DenseOutcome dense_pipeline(const scenario::Scenario& s, int k) {
  const core::MillionScale ms(s);
  DenseOutcome out;
  out.rows.resize(s.targets().size());
  out.errors_km.assign(s.targets().size(), -1.0);
  for (std::size_t t = 0; t < s.targets().size(); ++t) {
    out.rows[t] = ms.select_vps_by_representatives(t, k);
    const core::CbgResult res = ms.geolocate(out.rows[t], t);
    if (res.ok) out.errors_km[t] = ms.error_km(res.estimate, t);
  }
  return out;
}

TEST(ScaleStreamingCampaign, SelectionMatchesDensePartialSortPerColumn) {
  const auto& s = testing::small_scenario();
  (void)s.representative_rtts();  // warm the dense oracle
  const core::MillionScale ms(s);
  for (const TileShape& shape :
       {TileShape{16, 64}, TileShape{7, 13}, TileShape{1024, 4096}}) {
    RttTileSource reps = RttTileSource::for_representatives(s, shape);
    for (std::size_t tb = 0; tb < reps.target_blocks(); ++tb) {
      const auto block = core::streamed_select_block(
          reps, tb, /*k=*/3, std::span<const sim::HostId>(s.targets()));
      const std::size_t col_begin = tb * reps.shape().target_block;
      for (std::size_t cc = 0; cc < block.size(); ++cc) {
        const auto dense = ms.select_vps_by_representatives(col_begin + cc, 3);
        EXPECT_EQ(dense, block[cc])
            << "column " << col_begin + cc << " at shape " << shape.vp_block
            << "x" << shape.target_block;
      }
    }
  }
}

TEST(ScaleStreamingCampaign, KLargerThanCandidatesAndKZeroMatchDense) {
  const auto& s = testing::small_scenario();
  (void)s.representative_rtts();
  const core::MillionScale ms(s);
  RttTileSource reps = RttTileSource::for_representatives(s, {16, 64});
  const auto all = core::streamed_select_block(
      reps, 0, /*k=*/100000, std::span<const sim::HostId>(s.targets()));
  const auto none = core::streamed_select_block(
      reps, 0, /*k=*/0, std::span<const sim::HostId>(s.targets()));
  const std::size_t n =
      std::min(reps.shape().target_block, reps.cols());
  for (std::size_t cc = 0; cc < n; ++cc) {
    EXPECT_EQ(ms.select_vps_by_representatives(cc, 100000), all[cc]);
    EXPECT_TRUE(none[cc].empty());
  }
}

TEST(ScaleStreamingCampaign, CampaignMatchesDensePipelineAcrossShapesAndThreads) {
  const auto& s = testing::small_scenario();
  (void)s.target_rtts();
  (void)s.representative_rtts();
  const DenseOutcome dense = dense_pipeline(s, /*k=*/3);
  ThreadGuard guard;
  for (const unsigned threads : {1u, 8u}) {
    util::set_thread_count(threads);
    for (const TileShape& shape : {TileShape{16, 64}, TileShape{7, 13}}) {
      RttTileSource reps = RttTileSource::for_representatives(s, shape);
      RttTileSource targets = RttTileSource::for_targets(s, shape);
      const auto outcome = core::run_streaming_campaign(reps, targets);
      ASSERT_EQ(outcome.targets, s.targets().size());
      ASSERT_EQ(outcome.errors_km.size(), dense.errors_km.size());
      for (std::size_t t = 0; t < dense.errors_km.size(); ++t) {
        // Bitwise double equality: same observations, same CBG solve.
        EXPECT_EQ(dense.errors_km[t], outcome.errors_km[t])
            << "target " << t << " at " << threads << " thread(s), shape "
            << shape.vp_block << "x" << shape.target_block;
      }
      const auto located = static_cast<std::size_t>(std::count_if(
          dense.errors_km.begin(), dense.errors_km.end(),
          [](double e) { return e >= 0.0; }));
      EXPECT_EQ(outcome.located, located);
      EXPECT_EQ(outcome.failed, dense.errors_km.size() - located);
      EXPECT_GT(outcome.rep_cells, 0u);
      EXPECT_GT(outcome.target_cells, 0u);
      // The whole point: the final-ping campaign is sparse — k cells per
      // target, never the dense rows x cols.
      EXPECT_LE(outcome.target_cells, 3 * s.targets().size());
    }
  }
}

TEST(ScaleStreamingCampaign, ExplicitIdentityMappingDisablesSelfExclusion) {
  // A non-empty mapping (even the identity values) routes through the
  // shared-rep-column path, which cannot assume rep column == target, so
  // self-VP exclusion moves entirely to the final-ping stage. The outcome
  // may legitimately differ from the dense pipeline only for targets whose
  // own anchor won selection; everything else must agree.
  const auto& s = testing::small_scenario();
  RttTileSource reps = RttTileSource::for_representatives(s, {16, 64});
  RttTileSource targets = RttTileSource::for_targets(s, {16, 64});
  std::vector<std::uint32_t> identity(s.targets().size());
  for (std::size_t t = 0; t < identity.size(); ++t) {
    identity[t] = static_cast<std::uint32_t>(t);
  }
  const auto outcome =
      core::run_streaming_campaign(reps, targets, identity);
  EXPECT_EQ(outcome.targets, s.targets().size());
  EXPECT_EQ(outcome.located + outcome.failed, outcome.targets);
  // Most targets still locate: the self anchor rarely has the lowest
  // median RTT to its own /24's reps from a *different* /24's perspective.
  EXPECT_GT(outcome.located, outcome.targets / 2);
}

TEST(ScaleStreamingCampaign, MappingSizeIsValidated) {
  const auto& s = testing::small_scenario();
  RttTileSource reps = RttTileSource::for_representatives(s, {16, 64});
  RttTileSource targets = RttTileSource::for_targets(s, {16, 64});
  const std::vector<std::uint32_t> short_map(s.targets().size() / 2, 0);
  EXPECT_THROW(core::run_streaming_campaign(reps, targets, short_map),
               std::invalid_argument);
}

TEST(ScaleStreamingCampaign, StreamedAllVpErrorsMatchesDenseBitwise) {
  const auto& s = testing::small_scenario();
  const std::vector<double>& dense = eval::all_vp_errors(s);
  ThreadGuard guard;
  for (const unsigned threads : {1u, 8u}) {
    util::set_thread_count(threads);
    for (const TileShape& shape : {TileShape{16, 64}, TileShape{7, 13}}) {
      const std::vector<double> streamed =
          eval::streamed_all_vp_errors(s, {}, shape);
      ASSERT_EQ(dense.size(), streamed.size());
      for (std::size_t t = 0; t < dense.size(); ++t) {
        EXPECT_EQ(dense[t], streamed[t])
            << "target " << t << " at " << threads << " thread(s)";
      }
    }
  }
}

TEST(ScaleStreamingCampaign, ResilientRepSourceIsDeterministicAndFaultAware) {
  const auto& s = testing::small_scenario();
  RttTileSource a = core::make_resilient_rep_source(s, nullptr, {16, 64});
  RttTileSource b = core::make_resilient_rep_source(s, nullptr, {16, 64});
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), s.targets().size());
  // Same construction → same campaign → same bytes.
  const scenario::RttMatrix ma = a.materialise();
  const scenario::RttMatrix mb = b.materialise();
  for (std::size_t r = 0; r < ma.rows(); ++r) {
    for (std::size_t c = 0; c < ma.cols(); ++c) {
      const float x = ma.at(r, c);
      const float y = mb.at(r, c);
      ASSERT_TRUE((scenario::RttMatrix::is_missing(x) &&
                   scenario::RttMatrix::is_missing(y)) ||
                  x == y)
          << "(" << r << ", " << c << ")";
    }
  }
  // The fault-aware source uses its own RNG stream: it is a different
  // campaign from the hitlist-ordered one, not a re-labelling.
  EXPECT_EQ(a.campaign().group, 3u);
  EXPECT_EQ(a.campaign().dsts.size(), 3 * s.targets().size());
}

}  // namespace
}  // namespace geoloc
