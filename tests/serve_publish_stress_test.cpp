// Concurrency stress for the GeoService file-publish path: reader threads
// hammer lookups while a writer republishes from disk, alternating good
// snapshot files with freshly-rewritten corrupt ones. The invariants under
// fire: every lookup answers from some *complete* published version (the
// entry latitude encodes the dataset version, so a torn swap is instantly
// visible), a corrupt file never reaches readers (publish_from_file fails,
// quarantines, and the previous version keeps serving), and the whole dance
// is TSan-clean (the tsan-serve preset runs this file).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "publish/snapshot.h"
#include "serve/geo_service.h"
#include "util/durable.h"

namespace geoloc::serve {
namespace {

namespace fs = std::filesystem;

class ServePublishStress : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("geoloc-serve-publish-stress-" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  /// A snapshot file whose single entry's latitude encodes `version`.
  [[nodiscard]] std::string write_snapshot_file(const std::string& name,
                                                std::uint32_t version) const {
    publish::SnapshotBuilder b;
    publish::Record r;
    r.prefix = *net::Prefix::parse("10.1.0.0/16");
    r.location = {static_cast<double>(version), 0.0};
    r.provenance = "stress-v" + std::to_string(version);
    b.add(std::move(r));
    const std::string p = path(name);
    EXPECT_TRUE(b.write_file(
        p, publish::SnapshotMeta{.dataset_version = version,
                                 .source = "publish stress"}));
    return p;
  }

  fs::path dir_;
};

TEST_F(ServePublishStress, LookupsStayConsistentAcrossGoodAndCorruptPublishes) {
  const std::string v1 = write_snapshot_file("v1.geosnap", 1);
  const std::string v2 = write_snapshot_file("v2.geosnap", 2);
  const std::string bad = path("bad.geosnap");

  GeoService service;
  std::string error;
  ASSERT_TRUE(service.publish_from_file(v1, &error)) << error;

  const auto target = *net::IPv4Address::parse("10.1.2.3");
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const Answer a = service.lookup(target, /*now_s=*/0.0);
        // Always found (every published version covers the prefix), and
        // always internally consistent: latitude, provenance, and version
        // all come from the same complete snapshot.
        if (!a.found ||
            a.location.lat_deg != static_cast<double>(a.dataset_version) ||
            a.provenance !=
                "stress-v" + std::to_string(a.dataset_version)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  int good_publishes = 0;
  int rejected = 0;
  for (int i = 0; i < 150; ++i) {
    // A good version lands...
    if (service.publish_from_file(i % 2 == 0 ? v2 : v1, &error)) {
      ++good_publishes;
    }
    // ...then a freshly-rewritten corrupt file tries to. It must be
    // rejected (and quarantined) with the served version untouched.
    {
      std::ofstream f(bad, std::ios::binary | std::ios::trunc);
      f << "GEOSNAP? not even close " << i;
    }
    if (!service.publish_from_file(bad, &error)) ++rejected;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(good_publishes, 150);
  EXPECT_EQ(rejected, 150);
  EXPECT_FALSE(fs::exists(bad));  // always quarantined
  EXPECT_TRUE(fs::exists(util::durable::quarantine_path_for(bad)));
  EXPECT_EQ(service.stats().swaps, 151u);  // v1 + 150 good, 0 corrupt
  // And the service still answers from the last good version.
  const Answer final_answer = service.lookup(target, 0.0);
  EXPECT_TRUE(final_answer.found);
  EXPECT_EQ(final_answer.dataset_version, 1u);  // i=149 odd -> v1 last
}

}  // namespace
}  // namespace geoloc::serve
