#include "spatial/calibrator.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <random>

#include "eval/street_campaign.h"
#include "geo/constants.h"
#include "scenario/scenario.h"
#include "test_scenario.h"

namespace geoloc::spatial {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() /
          ("geoloc-spcal-" + std::to_string(::getpid()) + "-" + name))
      .string();
}

TEST(SpatialCalibrator, RecoversALinearSlope) {
  Calibrator cal(4);
  const geo::GeoPoint paris{48.85, 2.35};
  // Perfect 100 km/ms samples, all in one region.
  for (int i = 1; i <= 10; ++i) {
    cal.add_sample(paris, static_cast<double>(i), 100.0 * i);
  }
  const Calibrator::Fit fit = cal.fit_at(paris);
  EXPECT_TRUE(fit.calibrated);
  EXPECT_EQ(fit.samples, 10u);
  EXPECT_NEAR(fit.km_per_ms, 100.0, 1e-9);
  EXPECT_NEAR(cal.estimate_distance_km(paris, 3.0), 300.0, 1e-6);
}

TEST(SpatialCalibrator, RegionsAreIndependent) {
  Calibrator cal(4);
  const geo::GeoPoint paris{48.85, 2.35};
  const geo::GeoPoint sydney{-33.87, 151.21};  // a different level-4 cell
  for (int i = 1; i <= 5; ++i) {
    cal.add_sample(paris, i, 80.0 * i);    // slow region
    cal.add_sample(sydney, i, 120.0 * i);  // fast region
  }
  EXPECT_NEAR(cal.fit_at(paris).km_per_ms, 80.0, 1e-9);
  EXPECT_NEAR(cal.fit_at(sydney).km_per_ms, 120.0, 1e-9);
  EXPECT_EQ(cal.cell_count(), 2u);
  EXPECT_EQ(cal.sample_count(), 10u);
}

TEST(SpatialCalibrator, UnseenCellFallsBackToTheGlobalFit) {
  Calibrator cal(4);
  const geo::GeoPoint paris{48.85, 2.35};
  for (int i = 1; i <= 6; ++i) cal.add_sample(paris, i, 90.0 * i);
  // New York never got a sample: the global fit answers.
  const Calibrator::Fit fit = cal.fit_at({40.7, -74.0});
  EXPECT_TRUE(fit.calibrated);
  EXPECT_NEAR(fit.km_per_ms, 90.0, 1e-9);
  EXPECT_EQ(fit.samples, 6u);
}

TEST(SpatialCalibrator, UndersampledCalibratorUsesTheDefaultSpeed) {
  Calibrator cal;
  const Calibrator::Fit empty = cal.fit_at({0.0, 0.0});
  EXPECT_FALSE(empty.calibrated);
  EXPECT_DOUBLE_EQ(empty.km_per_ms, geo::kSoiFourNinthsKmPerMs);

  // Two samples are below the minimum; still the default.
  cal.add_sample({0.0, 0.0}, 1.0, 100.0);
  cal.add_sample({0.0, 0.0}, 2.0, 200.0);
  EXPECT_FALSE(cal.fit_at({0.0, 0.0}).calibrated);
}

TEST(SpatialCalibrator, SlopeIsClampedToTheSpeedOfInternet) {
  Calibrator cal(4);
  const geo::GeoPoint p{10.0, 10.0};
  // Implausibly fast samples (300 km/ms > 2/3 c).
  for (int i = 1; i <= 5; ++i) cal.add_sample(p, i, 300.0 * i);
  EXPECT_DOUBLE_EQ(cal.fit_at(p).km_per_ms, geo::kSoiTwoThirdsKmPerMs);
}

TEST(SpatialCalibrator, NonPositiveSlopesAreRejected) {
  Calibrator cal(4);
  const geo::GeoPoint p{20.0, 20.0};
  // Anti-correlated garbage: slope would be negative.
  for (int i = 1; i <= 5; ++i) cal.add_sample(p, i, -50.0 * i);
  const Calibrator::Fit fit = cal.fit_at(p);
  EXPECT_FALSE(fit.calibrated);
  EXPECT_DOUBLE_EQ(fit.km_per_ms, geo::kSoiFourNinthsKmPerMs);
}

TEST(SpatialCalibrator, SaveLoadRoundTrip) {
  Calibrator cal(6);
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> lat(-60.0, 60.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  std::uniform_real_distribution<double> delay(0.5, 40.0);
  for (int i = 0; i < 500; ++i) {
    const double d = delay(rng);
    cal.add_sample({lat(rng), lon(rng)}, d, d * 95.0);
  }
  const std::string path = temp_path("roundtrip.bin");
  ASSERT_TRUE(cal.save(path));
  const auto loaded = Calibrator::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, cal);
  EXPECT_EQ(loaded->cell_level(), 6);
  fs::remove(path);
}

TEST(SpatialCalibrator, CorruptionIsDetectedAndQuarantined) {
  Calibrator cal(4);
  for (int i = 1; i <= 8; ++i) cal.add_sample({5.0, 5.0}, i, 100.0 * i);
  const std::string path = temp_path("corrupt.bin");
  ASSERT_TRUE(cal.save(path));

  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  char c = 0;
  f.seekg(52);
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x01);
  f.seekp(52);
  f.write(&c, 1);
  f.close();

  EXPECT_FALSE(Calibrator::load(path));
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  fs::remove(path + ".corrupt");
}

TEST(SpatialCalibrator, StreetCampaignCalibrationAccumulatesUsableLandmarks) {
  // A hand-built campaign: one target with clean 4/9-c records and one
  // with none. calibrate_street_regions must invert measured -> delay and
  // fit the region around the first target.
  const auto& s = testing::small_scenario();
  ASSERT_GE(s.targets().size(), 2u);
  const geo::GeoPoint where = s.world().host(s.targets()[0]).true_location;

  eval::StreetCampaign campaign;
  campaign.records.resize(2);
  // measured = delay * 4/9 c with geographic = 0.8 * measured: the fitted
  // slope is 0.8 * 4/9 c.
  for (int i = 1; i <= 6; ++i) {
    const auto measured =
        static_cast<float>(i * geo::kSoiFourNinthsKmPerMs);
    campaign.records[0].distances.push_back({0.8F * measured, measured});
  }

  const Calibrator cal = eval::calibrate_street_regions(s, campaign, 4);
  EXPECT_EQ(cal.sample_count(), 6u);
  const Calibrator::Fit fit = cal.fit_at(where);
  EXPECT_TRUE(fit.calibrated);
  EXPECT_NEAR(fit.km_per_ms, 0.8 * geo::kSoiFourNinthsKmPerMs,
              0.01 * geo::kSoiFourNinthsKmPerMs);

  // An empty campaign calibrates nothing.
  const Calibrator none =
      eval::calibrate_street_regions(s, eval::StreetCampaign{}, 4);
  EXPECT_EQ(none.sample_count(), 0u);
  EXPECT_FALSE(none.fit_at(where).calibrated);
}

}  // namespace
}  // namespace geoloc::spatial
