#include "sim/traceroute.h"

#include <gtest/gtest.h>

#include "geo/geodesy.h"

namespace geoloc::sim {
namespace {

class TracerouteTest : public ::testing::Test {
 protected:
  TracerouteTest() : latency_(world_) {
    auto gen = world_.rng().fork("tr-test").gen();
    // Distinct cities at increasing distance from city 0 for path shapes.
    src_ = make_host(world_.cities()[0], 0x0C000001, gen);
    same_city_dst_ = make_host(world_.cities()[0], 0x0C000002, gen);

    // Find a mid-range (~1000-3000 km) and a far (> 6000 km) city.
    const geo::GeoPoint origin = world_.place(world_.cities()[0]).location;
    PlaceId mid = world_.cities()[0], far = world_.cities()[0];
    for (PlaceId c : world_.cities()) {
      const double d = geo::distance_km(world_.place(c).location, origin);
      if (d > 1'000.0 && d < 3'000.0) mid = c;
      if (d > 6'000.0) far = c;
    }
    mid_dst_ = make_host(mid, 0x0C000003, gen);
    far_dst_ = make_host(far, 0x0C000004, gen);
    tracer_ = std::make_unique<TracerouteEngine>(world_, latency_);
  }

  HostId make_host(PlaceId place, std::uint32_t addr, util::Pcg32& gen) {
    Host h;
    h.addr = net::IPv4Address{addr};
    h.place = place;
    h.true_location = world_.sample_location(place, 3.0, gen);
    h.reported_location = h.true_location;
    h.last_mile_ms = 0.3;
    world_.router_of(place);
    return world_.add_host(h);
  }

  World world_;
  LatencyModel latency_;
  std::unique_ptr<TracerouteEngine> tracer_;
  HostId src_ = kInvalidHost;
  HostId same_city_dst_ = kInvalidHost;
  HostId mid_dst_ = kInvalidHost;
  HostId far_dst_ = kInvalidHost;
};

TEST_F(TracerouteTest, ReachesDestinationWithFinalHop) {
  auto gen = world_.rng().fork("g1").gen();
  const Traceroute tr = tracer_->run(src_, far_dst_, gen);
  ASSERT_FALSE(tr.hops.empty());
  EXPECT_TRUE(tr.reached);
  EXPECT_EQ(tr.hops.back().host, far_dst_);
  EXPECT_TRUE(tr.destination_rtt_ms().has_value());
}

TEST_F(TracerouteTest, SameCityPathIsShort) {
  auto gen = world_.rng().fork("g2").gen();
  const Traceroute tr = tracer_->run(src_, same_city_dst_, gen);
  // access router + destination (both hosts share the place).
  EXPECT_LE(tr.hops.size(), 3u);
}

TEST_F(TracerouteTest, LongHaulHasWaypoints) {
  auto gen = world_.rng().fork("g3").gen();
  const Traceroute near = tracer_->run(src_, mid_dst_, gen);
  const Traceroute far = tracer_->run(src_, far_dst_, gen);
  EXPECT_GE(far.hops.size(), near.hops.size());
  EXPECT_GE(far.hops.size(), 4u);  // src router, waypoint(s), dst router, dst
}

TEST_F(TracerouteTest, PathRoutersDeterministic) {
  EXPECT_EQ(tracer_->path_routers(src_, far_dst_),
            tracer_->path_routers(src_, far_dst_));
}

TEST_F(TracerouteTest, RoutersAreRouterHosts) {
  for (HostId r : tracer_->path_routers(src_, far_dst_)) {
    EXPECT_EQ(world_.host(r).kind, HostKind::Router);
  }
}

TEST_F(TracerouteTest, SharedPrefixForSameCityDestinations) {
  // Two destinations in the same city: the paths from one VP must share
  // their prefix up to that city's router — the structural assumption of
  // the street-level D1/D2 computation (paper Figure 1c).
  auto gen = world_.rng().fork("g4").gen();
  Host extra;
  extra.addr = net::IPv4Address{0x0C000005};
  extra.place = world_.host(far_dst_).place;
  extra.true_location =
      world_.sample_location(extra.place, 3.0, gen);
  extra.reported_location = extra.true_location;
  const HostId sibling = world_.add_host(extra);

  const Traceroute t1 = tracer_->run(src_, far_dst_, gen);
  const Traceroute t2 = tracer_->run(src_, sibling, gen);
  const auto common = TracerouteEngine::last_common_hop(t1, t2);
  ASSERT_TRUE(common.has_value());
  // The last common hop is the destination city's router.
  EXPECT_EQ(world_.host(t1.hops[*common].host).place,
            world_.host(far_dst_).place);
}

TEST_F(TracerouteTest, LastCommonHopNoneForDisjointPaths) {
  Traceroute a, b;
  a.hops.push_back({1, net::IPv4Address{1u}, 1.0, true});
  b.hops.push_back({2, net::IPv4Address{2u}, 1.0, true});
  EXPECT_FALSE(TracerouteEngine::last_common_hop(a, b).has_value());
}

TEST_F(TracerouteTest, LastCommonHopSkipsSilentHops) {
  Traceroute a, b;
  a.hops.push_back({1, net::IPv4Address{1u}, 1.0, true});
  a.hops.push_back({2, net::IPv4Address{2u}, 0.0, false});
  b.hops.push_back({1, net::IPv4Address{1u}, 1.2, true});
  b.hops.push_back({2, net::IPv4Address{2u}, 1.5, true});
  const auto common = TracerouteEngine::last_common_hop(a, b);
  ASSERT_TRUE(common.has_value());
  EXPECT_EQ(*common, 0u);  // hop 1 responded in both; hop 2 silent in `a`
}

TEST_F(TracerouteTest, SomeHopsGoSilent) {
  auto gen = world_.rng().fork("g5").gen();
  int silent = 0, total = 0;
  for (int i = 0; i < 300; ++i) {
    const Traceroute tr = tracer_->run(src_, far_dst_, gen);
    for (const TraceHop& h : tr.hops) {
      ++total;
      silent += h.responded ? 0 : 1;
    }
  }
  EXPECT_GT(silent, 0);
  EXPECT_LT(static_cast<double>(silent) / total, 0.10);
}

}  // namespace
}  // namespace geoloc::sim
