#include "dataset/hitlist.h"

#include <gtest/gtest.h>

#include "geo/geodesy.h"
#include "test_scenario.h"

namespace geoloc::dataset {
namespace {

using geoloc::testing::small_scenario;

TEST(Hitlist, EveryTargetHasThreeRepresentatives) {
  const auto& s = small_scenario();
  EXPECT_EQ(s.hitlist().size(), s.catalog().anchors.size());
  for (sim::HostId target : s.catalog().anchors) {
    const RepresentativeSet& set = s.hitlist().for_target(target);
    EXPECT_EQ(set.prefix, net::slash24_of(s.world().host(target).addr));
    for (const Representative& r : set.reps) {
      ASSERT_NE(r.host, sim::kInvalidHost);
      EXPECT_EQ(s.world().host(r.host).kind, sim::HostKind::Representative);
      EXPECT_TRUE(set.prefix.contains(s.world().host(r.host).addr));
    }
  }
}

TEST(Hitlist, UnknownTargetThrows) {
  const auto& s = small_scenario();
  EXPECT_THROW(s.hitlist().for_target(sim::kInvalidHost), std::out_of_range);
}

TEST(Hitlist, MostRepresentativesAreColocated) {
  const auto& s = small_scenario();
  int colocated = 0, total = 0;
  for (sim::HostId target : s.catalog().anchors) {
    const geo::GeoPoint t = s.world().host(target).true_location;
    for (const Representative& r : s.hitlist().for_target(target).reps) {
      ++total;
      if (geo::distance_km(s.world().host(r.host).true_location, t) < 20.0) {
        ++colocated;
      }
    }
  }
  const double rate = static_cast<double>(colocated) / total;
  EXPECT_GT(rate, s.config().hitlist.colocated_rate - 0.08);
  EXPECT_LT(rate, 1.0);  // some stray representatives must exist
}

TEST(Hitlist, StrayRepresentativesAreFar) {
  const auto& s = small_scenario();
  int strays = 0;
  for (sim::HostId target : s.catalog().anchors) {
    const geo::GeoPoint t = s.world().host(target).true_location;
    for (const Representative& r : s.hitlist().for_target(target).reps) {
      const double d =
          geo::distance_km(s.world().host(r.host).true_location, t);
      if (d > 20.0) {
        ++strays;
        EXPECT_GE(d, s.config().hitlist.stray_min_km * 0.9);
      }
    }
  }
  EXPECT_GT(strays, 0);
}

TEST(Hitlist, ResponsiveScoresMatchResponsiveness) {
  const auto& s = small_scenario();
  for (sim::HostId target : s.catalog().anchors) {
    for (const Representative& r : s.hitlist().for_target(target).reps) {
      if (r.from_hitlist && r.responsiveness_score > 0) {
        EXPECT_TRUE(s.world().host(r.host).responsive);
      }
    }
  }
}

TEST(Hitlist, ToppedUpTargetsHaveFillIns) {
  // Build a hitlist with a low responsive rate to force fill-ins, exactly
  // the paper's 8-targets-with-fewer-than-three-responsive case.
  sim::World world;
  auto gen = world.rng().fork("hitlist-test").gen();
  const net::Asn as = world.create_as(sim::AsCategory::Content, 0);
  std::vector<sim::HostId> targets;
  for (int i = 0; i < 40; ++i) {
    sim::Host h;
    h.kind = sim::HostKind::Anchor;
    h.asn = as;
    h.place = world.cities()[gen.index(world.cities().size())];
    h.true_location = world.sample_location(h.place, 4.0, gen);
    h.reported_location = h.true_location;
    h.addr = world.allocate_site_prefix(as).address_at(1);
    targets.push_back(world.add_host(h));
  }
  HitlistConfig cfg;
  cfg.responsive_rate = 0.5;  // force many unresponsive representatives
  const Hitlist hitlist = Hitlist::build(world, targets, cfg);
  EXPECT_GT(hitlist.topped_up_targets().size(), 5u);
  for (sim::HostId t : hitlist.topped_up_targets()) {
    int fill_ins = 0;
    for (const Representative& r : hitlist.for_target(t).reps) {
      fill_ins += r.from_hitlist ? 0 : 1;
    }
    EXPECT_GT(fill_ins, 0);
  }
}

TEST(Hitlist, FillInAddressesDoNotCollide) {
  sim::World world;
  auto gen = world.rng().fork("hitlist-collide").gen();
  const net::Asn as = world.create_as(sim::AsCategory::Content, 0);
  std::vector<sim::HostId> targets;
  for (int i = 0; i < 60; ++i) {
    sim::Host h;
    h.kind = sim::HostKind::Anchor;
    h.asn = as;
    h.place = world.cities()[0];
    h.true_location = world.place(h.place).location;
    h.reported_location = h.true_location;
    h.addr = world.allocate_site_prefix(as).address_at(1);
    targets.push_back(world.add_host(h));
  }
  HitlistConfig cfg;
  cfg.responsive_rate = 0.0;  // every representative becomes a fill-in
  const Hitlist hitlist = Hitlist::build(world, targets, cfg);
  for (sim::HostId t : targets) {
    const auto& reps = hitlist.for_target(t).reps;
    EXPECT_NE(world.host(reps[0].host).addr, world.host(reps[1].host).addr);
    EXPECT_NE(world.host(reps[1].host).addr, world.host(reps[2].host).addr);
    EXPECT_NE(world.host(reps[0].host).addr, world.host(reps[2].host).addr);
  }
}

}  // namespace
}  // namespace geoloc::dataset
