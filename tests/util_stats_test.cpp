#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace geoloc::util {
namespace {

TEST(Mean, Basics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stddev, KnownSample) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);  // sample (n-1) stddev
}

TEST(Stddev, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
}

TEST(Percentile, UnsortedInputIsFine) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
}

TEST(Percentile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile(std::vector<double>{}, 50.0)));
}

TEST(Percentile, OutOfRangeQuantileClampsToEndpoints) {
  // Regression: q < 0 made the rank negative and the floor-to-size_t cast
  // over-indexed the sorted sample (UB); q > 100 over-indexed directly.
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, -1e9), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 250.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1e9), 4.0);
}

TEST(Percentile, NaNQuantileIsNaN) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_TRUE(std::isnan(percentile(xs, std::nan(""))));
}

TEST(Percentile, SingleElementSampleForAnyQuantile) {
  const std::vector<double> xs{7.5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(xs, -5.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 250.0), 7.5);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{1.0, 2.0, 3.0, 10.0}), 2.5);
}

TEST(MinMax, Basics) {
  const std::vector<double> xs{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 3.0);
  EXPECT_TRUE(std::isnan(min_of(std::vector<double>{})));
}

TEST(FractionBelow, InclusiveThreshold) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(fraction_below(xs, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(fraction_below(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(xs, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(fraction_below(std::vector<double>{}, 1.0), 0.0);
}

TEST(Pearson, PerfectCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> up{2.0, 4.0, 6.0, 8.0};
  const std::vector<double> down{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Pearson, NoVarianceIsZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> flat{5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}

TEST(Pearson, MismatchedSizesReturnZero) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(Pearson, IndependentSamplesNearZero) {
  // Deterministic pseudo-random pair with no relation.
  std::vector<double> xs, ys;
  std::uint64_t s = 1;
  for (int i = 0; i < 2'000; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    xs.push_back(static_cast<double>((s >> 33) & 0xffff));
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    ys.push_back(static_cast<double>((s >> 33) & 0xffff));
  }
  EXPECT_LT(std::abs(pearson(xs, ys)), 0.08);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFit, DegenerateX) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0, 3.0};
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(EmpiricalCdf, SortedAndNormalized) {
  auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative, 1.0);
  EXPECT_NEAR(cdf[0].cumulative, 1.0 / 3.0, 1e-12);
}

TEST(DecimatedCdf, KeepsEndpointsAndBound) {
  std::vector<double> xs;
  for (int i = 0; i < 1'000; ++i) xs.push_back(i);
  auto cdf = decimated_cdf(xs, 11);
  ASSERT_EQ(cdf.size(), 11u);
  EXPECT_DOUBLE_EQ(cdf.front().value, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 999.0);
  EXPECT_DOUBLE_EQ(cdf.back().cumulative, 1.0);
}

TEST(DecimatedCdf, SmallInputUntouched) {
  auto cdf = decimated_cdf({1.0, 2.0}, 10);
  EXPECT_EQ(cdf.size(), 2u);
}

TEST(DecimatedCdf, DegenerateMaxPointsReturnsFullCdf) {
  // max_points < 2 can't keep both endpoints; the full CDF comes back
  // instead of a division by zero in the step computation.
  const std::vector<double> xs{3.0, 1.0, 2.0, 4.0};
  EXPECT_EQ(decimated_cdf(xs, 0).size(), 4u);
  EXPECT_EQ(decimated_cdf(xs, 1).size(), 4u);
}

TEST(NaNSamples, PropagateInsteadOfPoisoningIndices) {
  // NaN-bearing samples yield NaN aggregates (never a crash or a bogus
  // finite number); the guards only special-case *empty* inputs.
  const std::vector<double> with_nan{1.0, std::nan(""), 3.0};
  const std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_TRUE(std::isnan(mean(with_nan)));
  EXPECT_TRUE(std::isnan(stddev(with_nan)));
  EXPECT_TRUE(std::isnan(pearson(with_nan, ys)));
  const LinearFit fit = linear_fit(with_nan, ys);
  EXPECT_TRUE(std::isnan(fit.slope));
}

TEST(EmptySamples, DocumentedFallbacks) {
  const std::vector<double> none;
  EXPECT_DOUBLE_EQ(mean(none), 0.0);
  EXPECT_DOUBLE_EQ(stddev(none), 0.0);
  EXPECT_DOUBLE_EQ(fraction_below(none, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(pearson(none, none), 0.0);
  EXPECT_DOUBLE_EQ(linear_fit(none, none).slope, 0.0);
  EXPECT_TRUE(decimated_cdf({}, 5).empty());
}

TEST(Summarize, FieldsConsistent) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_LT(s.p25, s.median);
  EXPECT_LT(s.median, s.p75);
  EXPECT_LT(s.p75, s.p90);
  EXPECT_FALSE(to_string(s).empty());
}

}  // namespace
}  // namespace geoloc::util
