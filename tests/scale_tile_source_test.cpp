// Tile-vs-dense equivalence (DESIGN.md §14).
//
// The streaming tile source replaced the scenario's dense materialisation
// loops; this suite pins the replacement byte for byte. The oracle is the
// PR 3 per-cell recipe replicated verbatim (scalar min_rtt_ms through
// stream.fork("m", (r << 20) | c)) — the exact code the dense path ran
// before tiling — compared against materialise() and random tile access
// across tile shapes, thread counts and eviction histories. Also covered:
// LRU budget/eviction accounting, the sparse cell() path, the RttMatrix
// overflow guard, and CampaignReport byte-identity through the executor
// under calm and stormy weather at 1 and 8 threads.
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "atlas/checkpoint.h"
#include "eval/experiments.h"
#include "scenario/presets.h"
#include "scenario/rtt_matrix.h"
#include "scenario/tile_source.h"
#include "test_scenario.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace geoloc {
namespace {

using scenario::RttMatrix;
using scenario::RttTileSource;
using scenario::TileShape;

/// Bytewise matrix equality: NaN == NaN, -0.0 != 0.0 — the disk-cache
/// definition of "same campaign".
void expect_bit_identical(const RttMatrix& a, const RttMatrix& b,
                          const char* label) {
  ASSERT_EQ(a.rows(), b.rows()) << label;
  ASSERT_EQ(a.cols(), b.cols()) << label;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      const float x = a.at(r, c);
      const float y = b.at(r, c);
      std::uint32_t xb, yb;
      std::memcpy(&xb, &x, sizeof xb);
      std::memcpy(&yb, &y, sizeof yb);
      ASSERT_EQ(xb, yb) << label << " diverges at (" << r << ", " << c << ")";
    }
  }
}

/// The pre-tiling dense target loop, verbatim (PR 3): the oracle the tile
/// source must reproduce.
RttMatrix dense_target_oracle(const scenario::Scenario& s) {
  RttMatrix m(s.vps().size(), s.targets().size());
  const util::RngStream stream = s.world().rng().fork("campaign-target");
  for (std::size_t r = 0; r < s.vps().size(); ++r) {
    for (std::size_t c = 0; c < s.targets().size(); ++c) {
      auto gen = stream.fork("m", (r << 20) | c).gen();
      const auto rtt = s.latency().min_rtt_ms(s.vps()[r], s.targets()[c],
                                              s.config().ping_packets, gen);
      if (rtt) m.set(r, c, static_cast<float>(*rtt));
    }
  }
  return m;
}

/// The pre-tiling dense representative loop, verbatim.
RttMatrix dense_rep_oracle(const scenario::Scenario& s) {
  RttMatrix m(s.vps().size(), s.targets().size());
  const util::RngStream stream = s.world().rng().fork("campaign-reps");
  for (std::size_t c = 0; c < s.targets().size(); ++c) {
    const auto& set = s.hitlist().for_target(s.targets()[c]);
    for (std::size_t r = 0; r < s.vps().size(); ++r) {
      auto gen = stream.fork("m", (r << 20) | c).gen();
      double vals[3];
      int n = 0;
      for (const auto& rep : set.reps) {
        const auto rtt = s.latency().min_rtt_ms(s.vps()[r], rep.host,
                                                s.config().ping_packets, gen);
        if (rtt) vals[n++] = *rtt;
      }
      if (n == 0) continue;
      if (n > 1 && vals[0] > vals[1]) std::swap(vals[0], vals[1]);
      if (n > 2 && vals[1] > vals[2]) std::swap(vals[1], vals[2]);
      if (n > 1 && vals[0] > vals[1]) std::swap(vals[0], vals[1]);
      const double med = (n == 3)   ? vals[1]
                         : (n == 2) ? (vals[0] + vals[1]) / 2.0
                                    : vals[0];
      m.set(r, c, static_cast<float>(med));
    }
  }
  return m;
}

/// Restores the engine's thread count when a test body returns.
struct ThreadGuard {
  ThreadGuard() = default;
  ~ThreadGuard() { util::set_thread_count(0); }
};

const TileShape kShapes[] = {
    {7, 13},      // deliberately ragged: partial edge tiles everywhere
    {16, 64},     //
    {1024, 64},   // one block of rows
    {1024, 4096}, // one tile holds the whole small matrix
};

TEST(ScaleTileSource, TargetMaterialiseMatchesDenseOracleAcrossShapesAndThreads) {
  const auto& s = testing::small_scenario();
  const RttMatrix oracle = dense_target_oracle(s);
  ThreadGuard guard;
  for (const unsigned threads : {1u, 8u}) {
    util::set_thread_count(threads);
    for (const TileShape& shape : kShapes) {
      const RttMatrix tiled =
          RttTileSource::for_targets(s, shape).materialise();
      expect_bit_identical(oracle, tiled, "target campaign");
    }
  }
}

TEST(ScaleTileSource, RepMaterialiseMatchesDenseOracleAcrossShapesAndThreads) {
  const auto& s = testing::small_scenario();
  const RttMatrix oracle = dense_rep_oracle(s);
  ThreadGuard guard;
  for (const unsigned threads : {1u, 8u}) {
    util::set_thread_count(threads);
    for (const TileShape& shape : kShapes) {
      const RttMatrix tiled =
          RttTileSource::for_representatives(s, shape).materialise();
      expect_bit_identical(oracle, tiled, "representative campaign");
    }
  }
}

TEST(ScaleTileSource, ScenarioMatricesEqualTheDenseOracles) {
  // The scenario's own accessors now assemble through the tile source; the
  // disk-cache tag is only honest if they still hold the PR 3 bytes.
  const auto& s = testing::small_scenario();
  expect_bit_identical(dense_target_oracle(s), s.target_rtts(),
                       "scenario::target_rtts");
  expect_bit_identical(dense_rep_oracle(s), s.representative_rtts(),
                       "scenario::representative_rtts");
}

TEST(ScaleTileSource, RandomAccessThroughEvictingCacheStaysBitIdentical) {
  // A budget of 2 tiles over a 7×13 tiling forces constant eviction; every
  // at() must still equal the dense byte regardless of regeneration.
  const auto& s = testing::small_scenario();
  const RttMatrix oracle = dense_target_oracle(s);
  RttTileSource src =
      RttTileSource::for_targets(s, {7, 13}, /*budget_tiles=*/2);
  util::Pcg32 gen{0xfeedULL};
  for (int i = 0; i < 4000; ++i) {
    const auto r = static_cast<std::size_t>(gen.uniform() *
                                            static_cast<double>(src.rows()));
    const auto c = static_cast<std::size_t>(gen.uniform() *
                                            static_cast<double>(src.cols()));
    const float expected = oracle.at(r, c);
    const float got = src.at(r, c);
    std::uint32_t eb, gb;
    std::memcpy(&eb, &expected, sizeof eb);
    std::memcpy(&gb, &got, sizeof gb);
    ASSERT_EQ(eb, gb) << "(" << r << ", " << c << ")";
  }
  EXPECT_GT(src.stats().evictions, 0u);
  EXPECT_LE(src.stats().resident_tiles, 2u);
}

TEST(ScaleTileSource, SparseCellPathMatchesDenseBytes) {
  const auto& s = testing::small_scenario();
  const RttMatrix target_oracle = dense_target_oracle(s);
  const RttMatrix rep_oracle = dense_rep_oracle(s);
  const RttTileSource targets = RttTileSource::for_targets(s, {16, 64});
  const RttTileSource reps = RttTileSource::for_representatives(s, {16, 64});
  util::Pcg32 gen{0x5eedULL};
  for (int i = 0; i < 2000; ++i) {
    const auto r = static_cast<std::size_t>(
        gen.uniform() * static_cast<double>(targets.rows()));
    const auto c = static_cast<std::size_t>(
        gen.uniform() * static_cast<double>(targets.cols()));
    const float t_expected = target_oracle.at(r, c);
    const float t_got = targets.cell(r, c);
    std::uint32_t eb, gb;
    std::memcpy(&eb, &t_expected, sizeof eb);
    std::memcpy(&gb, &t_got, sizeof gb);
    ASSERT_EQ(eb, gb) << "target cell (" << r << ", " << c << ")";
    const float r_expected = rep_oracle.at(r, c);
    const float r_got = reps.cell(r, c);
    std::memcpy(&eb, &r_expected, sizeof eb);
    std::memcpy(&gb, &r_got, sizeof gb);
    ASSERT_EQ(eb, gb) << "rep cell (" << r << ", " << c << ")";
  }
  // The sparse path must not touch the cache.
  EXPECT_EQ(targets.stats().hits + targets.stats().misses, 0u);
}

TEST(ScaleTileSource, LruCacheHonorsBudgetAndCountsHits) {
  const auto& s = testing::small_scenario();
  RttTileSource src =
      RttTileSource::for_targets(s, {16, 64}, /*budget_tiles=*/3);
  ASSERT_GE(src.vp_blocks(), 4u);
  // Touch four distinct tiles: 4 misses, then the budget holds 3.
  for (std::size_t vb = 0; vb < 4; ++vb) src.tile(vb, 0);
  EXPECT_EQ(src.stats().misses, 4u);
  EXPECT_EQ(src.stats().evictions, 1u);
  EXPECT_EQ(src.stats().resident_tiles, 3u);
  // Tile 0 was evicted (least recently used); 3 is a hit.
  src.tile(3, 0);
  EXPECT_EQ(src.stats().hits, 1u);
  src.tile(0, 0);
  EXPECT_EQ(src.stats().misses, 5u);
  // Hitting a tile refreshes its recency: after touching 0, tile 2 is now
  // the LRU victim.
  src.tile(3, 0);
  src.tile(0, 0);
  src.tile(1, 0);  // evicts 2
  src.tile(3, 0);  // still resident → hit
  EXPECT_EQ(src.stats().misses, 6u);
  EXPECT_GT(src.stats().peak_resident_bytes, 0u);
  EXPECT_EQ(src.stats().resident_bytes,
            src.stats().resident_tiles * 16 * 64 * sizeof(float));
}

TEST(ScaleTileSource, ConstructorRejectsOversizedAndMalformedCampaigns) {
  const auto& s = testing::small_scenario();
  scenario::TileCampaign c;
  c.world = &s.world();
  c.latency = &s.latency();
  c.vps = {s.vps()[0]};
  c.dsts = {s.targets()[0], s.targets()[1]};
  c.group = 3;  // dsts not a multiple of group
  EXPECT_THROW(RttTileSource{std::move(c)}, std::invalid_argument);

  scenario::TileCampaign missing;
  missing.latency = &s.latency();
  EXPECT_THROW(RttTileSource{std::move(missing)}, std::invalid_argument);
}

TEST(ScaleTileSource, RttMatrixCtorThrowsOnExtentOverflow) {
  // rows * cols wraps size_t: must throw, not allocate a tiny matrix.
  const std::size_t huge = std::numeric_limits<std::size_t>::max() / 2;
  EXPECT_THROW(RttMatrix(huge, 4), std::length_error);
  EXPECT_THROW(RttMatrix(4, huge), std::length_error);
  // Degenerate-but-legal extents still construct.
  EXPECT_NO_THROW(RttMatrix(0, huge));
  EXPECT_NO_THROW(RttMatrix(huge, 0));
}

/// The whole-pipeline determinism gate: the failure-sensitivity campaign
/// (executor + faults + CBG over the tiled matrices) must serialize to the
/// same checkpoint bytes at 1 and 8 threads, calm and stormy.
TEST(ScaleTileSource, CampaignReportBytesStableAcrossThreads) {
  const auto& s = testing::small_scenario();
  (void)s.target_rtts();          // warm the unguarded lazy init
  (void)s.representative_rtts();  // before any parallel consumption
  const std::vector<eval::WeatherSpec> weathers{
      {"calm", scenario::calm_weather()},
      {"stormy", scenario::stormy_weather()},
  };
  ThreadGuard guard;
  util::set_thread_count(1);
  const auto base = eval::run_failure_sensitivity(s, weathers, /*max_vps=*/40);
  util::set_thread_count(8);
  const auto wide = eval::run_failure_sensitivity(s, weathers, /*max_vps=*/40);
  ASSERT_EQ(base.size(), wide.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(atlas::encode_report(base[i].report),
              atlas::encode_report(wide[i].report))
        << base[i].label << " report bytes differ across thread counts";
    EXPECT_EQ(base[i].located, wide[i].located);
    EXPECT_EQ(base[i].median_error_km, wide[i].median_error_km);
  }
}

}  // namespace
}  // namespace geoloc
