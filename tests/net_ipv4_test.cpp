#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace geoloc::net {
namespace {

TEST(IPv4Address, ParseValid) {
  const auto a = IPv4Address::parse("192.168.1.42");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->octet(0), 192);
  EXPECT_EQ(a->octet(1), 168);
  EXPECT_EQ(a->octet(2), 1);
  EXPECT_EQ(a->octet(3), 42);
  EXPECT_EQ(a->to_string(), "192.168.1.42");
}

TEST(IPv4Address, ParseBoundaries) {
  EXPECT_TRUE(IPv4Address::parse("0.0.0.0").has_value());
  EXPECT_TRUE(IPv4Address::parse("255.255.255.255").has_value());
}

TEST(IPv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(IPv4Address::parse("").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IPv4Address::parse("256.1.1.1").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3.x").has_value());
  EXPECT_FALSE(IPv4Address::parse("1..2.3").has_value());
  EXPECT_FALSE(IPv4Address::parse(" 1.2.3.4").has_value());
  EXPECT_FALSE(IPv4Address::parse("1.2.3.4 ").has_value());
  EXPECT_FALSE(IPv4Address::parse("-1.2.3.4").has_value());
}

TEST(IPv4Address, RoundTripsThroughValue) {
  const IPv4Address a{10, 20, 30, 40};
  EXPECT_EQ(IPv4Address{a.value()}, a);
  EXPECT_EQ(IPv4Address::parse(a.to_string()), a);
}

TEST(IPv4Address, Ordering) {
  EXPECT_LT(IPv4Address(1, 0, 0, 0), IPv4Address(2, 0, 0, 0));
  EXPECT_LT(IPv4Address(1, 0, 0, 1), IPv4Address(1, 0, 1, 0));
}

TEST(Prefix, MasksHostBits) {
  const Prefix p{IPv4Address{192, 168, 1, 42}, 24};
  EXPECT_EQ(p.network().to_string(), "192.168.1.0");
  EXPECT_EQ(p.length(), 24);
  EXPECT_EQ(p.to_string(), "192.168.1.0/24");
}

TEST(Prefix, ContainsAddresses) {
  const Prefix p{IPv4Address{10, 0, 0, 0}, 8};
  EXPECT_TRUE(p.contains(IPv4Address(10, 200, 3, 4)));
  EXPECT_FALSE(p.contains(IPv4Address(11, 0, 0, 0)));
}

TEST(Prefix, ContainsPrefixes) {
  const Prefix p16{IPv4Address{10, 1, 0, 0}, 16};
  const Prefix p24{IPv4Address{10, 1, 2, 0}, 24};
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_FALSE(p24.contains(p16));
  EXPECT_TRUE(p16.contains(p16));
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix all{IPv4Address{}, 0};
  EXPECT_TRUE(all.contains(IPv4Address(255, 255, 255, 255)));
  EXPECT_EQ(all.size(), 1ULL << 32);
}

TEST(Prefix, SizeAndAddressAt) {
  const Prefix p{IPv4Address{10, 0, 0, 0}, 24};
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.address_at(0).to_string(), "10.0.0.0");
  EXPECT_EQ(p.address_at(255).to_string(), "10.0.0.255");
}

TEST(Prefix, ParseValidAndInvalid) {
  const auto p = Prefix::parse("172.16.0.0/12");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 12);
  EXPECT_FALSE(Prefix::parse("172.16.0.0").has_value());
  EXPECT_FALSE(Prefix::parse("172.16.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("172.16.0.0/x").has_value());
  EXPECT_FALSE(Prefix::parse("999.16.0.0/8").has_value());
}

TEST(Prefix, ParseNormalizesHostBits) {
  const auto p = Prefix::parse("192.168.1.42/24");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->network().to_string(), "192.168.1.0");
}

TEST(Slash24, OfAddress) {
  const Prefix p = slash24_of(IPv4Address(8, 8, 8, 8));
  EXPECT_EQ(p.to_string(), "8.8.8.0/24");
}

TEST(Asn, Comparison) {
  EXPECT_EQ((Asn{100}), (Asn{100}));
  EXPECT_LT((Asn{100}), (Asn{200}));
}

}  // namespace
}  // namespace geoloc::net
