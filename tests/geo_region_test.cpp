// Unit and property tests for the CBG region engine (disk intersection).
#include "geo/region.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "geo/geodesy.h"
#include "util/rng.h"

namespace geoloc::geo {
namespace {

constexpr GeoPoint kParis{48.8566, 2.3522};
constexpr GeoPoint kLyon{45.7640, 4.8357};
constexpr GeoPoint kSydney{-33.8688, 151.2093};

TEST(Disk, ContainsItsCenterAndBoundary) {
  const Disk d{kParis, 100.0};
  EXPECT_TRUE(d.contains(kParis));
  EXPECT_TRUE(d.contains(destination(kParis, 42.0, 99.9)));
  EXPECT_FALSE(d.contains(destination(kParis, 42.0, 100.5)));
}

TEST(Disk, InsideAndDisjoint) {
  const Disk small{kParis, 50.0};
  const Disk big{kParis, 500.0};
  const Disk far{kSydney, 100.0};
  EXPECT_TRUE(small.inside(big));
  EXPECT_FALSE(big.inside(small));
  EXPECT_TRUE(small.disjoint(far));
  EXPECT_FALSE(small.disjoint(big));
}

TEST(PruneDominated, RemovesCoveringDisks) {
  const std::vector<Disk> disks{{kParis, 40.0}, {kParis, 4'000.0},
                                {kLyon, 5'000.0}};
  const auto kept = prune_dominated(disks);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].radius_km, 40.0);
}

TEST(PruneDominated, KeepsGenuineConstraints) {
  // Two overlapping disks, neither containing the other.
  const std::vector<Disk> disks{{kParis, 300.0}, {kLyon, 300.0}};
  EXPECT_EQ(prune_dominated(disks).size(), 2u);
}

TEST(PruneDominated, SortsByRadius) {
  const std::vector<Disk> disks{{kLyon, 300.0}, {kParis, 200.0}};
  const auto kept = prune_dominated(disks);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_LE(kept[0].radius_km, kept[1].radius_km);
}

TEST(IntersectDisks, EmptyInputYieldsEmptyRegion) {
  EXPECT_TRUE(intersect_disks({}).empty);
}

TEST(IntersectDisks, SingleDiskCentroidIsCenter) {
  const std::vector<Disk> disks{{kParis, 200.0}};
  const Region r = intersect_disks(disks);
  ASSERT_FALSE(r.empty);
  EXPECT_LT(distance_km(r.centroid, kParis), 5.0);
  EXPECT_NEAR(r.area_km2, kPi * 200.0 * 200.0, 0.15 * kPi * 200.0 * 200.0);
}

TEST(IntersectDisks, DisjointDisksAreEmpty) {
  const std::vector<Disk> disks{{kParis, 100.0}, {kSydney, 100.0}};
  EXPECT_TRUE(intersect_disks(disks).empty);
}

TEST(IntersectDisks, LensCentroidBetweenCenters) {
  // Paris and Lyon are ~392 km apart; 250-km disks form a lens between them.
  const std::vector<Disk> disks{{kParis, 250.0}, {kLyon, 250.0}};
  const Region r = intersect_disks(disks);
  ASSERT_FALSE(r.empty);
  EXPECT_TRUE(region_contains(disks, r.centroid));
  const GeoPoint mid = midpoint(kParis, kLyon);
  EXPECT_LT(distance_km(r.centroid, mid), 60.0);
}

TEST(IntersectDisks, RefinementShrinksRadius) {
  const std::vector<Disk> disks{{kParis, 250.0}, {kLyon, 250.0}};
  RegionOptions coarse;
  coarse.refine_levels = 0;
  RegionOptions fine;
  fine.refine_levels = 2;
  const Region rc = intersect_disks(disks, coarse);
  const Region rf = intersect_disks(disks, fine);
  ASSERT_FALSE(rc.empty);
  ASSERT_FALSE(rf.empty);
  // Refinement must not move the centroid much, and samples get denser.
  EXPECT_LT(distance_km(rc.centroid, rf.centroid), 40.0);
}

TEST(IntersectDisks, ThinLensFoundByRetry) {
  // Nearly-disjoint disks leave a sliver; the double-resolution retry must
  // find it rather than declaring emptiness.
  const double d = distance_km(kParis, kLyon);
  const std::vector<Disk> disks{{kParis, d * 0.52}, {kLyon, d * 0.505}};
  const Region r = intersect_disks(disks);
  EXPECT_FALSE(r.empty);
}

TEST(RegionContains, MatchesDiskTest) {
  const std::vector<Disk> disks{{kParis, 300.0}, {kLyon, 300.0}};
  EXPECT_TRUE(region_contains(disks, midpoint(kParis, kLyon)));
  EXPECT_FALSE(region_contains(disks, kSydney));
}

// ---------------------------------------------------------------------------
// Property sweep: for random constraint sets that are known to contain a
// ground-truth point (radii >= distance to the point), the region must be
// non-empty, contain the point among the constraints, and the centroid must
// stay within the smallest disk's diameter of the truth.
class RegionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegionProperty, SoundConstraintsYieldSoundCentroid) {
  auto gen = util::Pcg32{GetParam()};
  const GeoPoint truth{gen.uniform(-60.0, 60.0), gen.uniform(-170.0, 170.0)};

  std::vector<Disk> disks;
  const int n = 3 + static_cast<int>(gen.bounded(10));
  double min_radius = 1e9;
  for (int i = 0; i < n; ++i) {
    const double vp_dist = gen.uniform(5.0, 2'000.0);
    const GeoPoint vp = destination(truth, gen.uniform(0.0, 360.0), vp_dist);
    // Radius always covers the truth (slack mimics SOI-safe RTT inflation).
    const double radius = vp_dist * gen.uniform(1.02, 1.8) + gen.uniform(5.0, 80.0);
    disks.push_back(Disk{vp, radius});
    min_radius = std::min(min_radius, radius);
  }

  const Region region = intersect_disks(disks);
  ASSERT_FALSE(region.empty);
  EXPECT_TRUE(region_contains(disks, truth));
  // The centroid cannot leave the feasible region, which is inside the
  // smallest disk; so it is within 2 * min_radius of the truth.
  EXPECT_LE(distance_km(region.centroid, truth), 2.0 * min_radius + 1.0);
}

INSTANTIATE_TEST_SUITE_P(RandomConstraintSets, RegionProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace geoloc::geo
