#include "atlas/platform.h"

#include <gtest/gtest.h>

#include "test_scenario.h"

namespace geoloc::atlas {
namespace {

class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest()
      : scenario_(geoloc::testing::small_scenario()),
        platform_(std::make_unique<Platform>(scenario_.world(),
                                             scenario_.latency())) {}

  const scenario::Scenario& scenario_;
  std::unique_ptr<Platform> platform_;
};

TEST_F(PlatformTest, PingMetersCreditsAndCounters) {
  const auto vp = scenario_.vps()[1];
  const auto target = scenario_.targets()[0];
  const PingMeasurement m = platform_->ping(vp, target);
  EXPECT_EQ(m.vp, vp);
  EXPECT_EQ(m.target, target);
  EXPECT_TRUE(m.min_rtt_ms.has_value());
  EXPECT_EQ(m.packets_sent, platform_->config().ping_packets);
  EXPECT_EQ(platform_->usage().pings, 1u);
  EXPECT_EQ(platform_->usage().ping_packets,
            static_cast<std::uint64_t>(platform_->config().ping_packets));
  EXPECT_GT(platform_->usage().credits, 0u);
}

TEST_F(PlatformTest, ExplicitPacketCount) {
  const PingMeasurement m =
      platform_->ping(scenario_.vps()[0], scenario_.targets()[1], 1);
  EXPECT_EQ(m.packets_sent, 1);
}

TEST_F(PlatformTest, TracerouteChargesFlatRate) {
  const auto before = platform_->usage().credits;
  const sim::Traceroute tr =
      platform_->traceroute(scenario_.vps()[2], scenario_.targets()[0]);
  EXPECT_FALSE(tr.hops.empty());
  EXPECT_EQ(platform_->usage().traceroutes, 1u);
  EXPECT_EQ(platform_->usage().credits - before,
            platform_->config().credits.per_traceroute);
}

TEST_F(PlatformTest, PingFromAllCoversEveryVp) {
  std::vector<sim::HostId> vps(scenario_.vps().begin(),
                               scenario_.vps().begin() + 20);
  const auto results = platform_->ping_from_all(vps, scenario_.targets()[0]);
  EXPECT_EQ(results.size(), 20u);
  EXPECT_EQ(platform_->usage().pings, 20u);
}

TEST_F(PlatformTest, ResetUsageClearsCounters) {
  platform_->ping(scenario_.vps()[0], scenario_.targets()[0]);
  platform_->reset_usage();
  EXPECT_EQ(platform_->usage().pings, 0u);
  EXPECT_EQ(platform_->usage().credits, 0u);
}

TEST_F(PlatformTest, ProbingRatesFollowClassBands) {
  const auto& cfg = platform_->config();
  // Anchors (the first rows of the VP set) sit in the anchor band.
  const double anchor_pps = platform_->probing_rate_pps(scenario_.targets()[0]);
  EXPECT_GE(anchor_pps, cfg.anchor_pps_min);
  EXPECT_LE(anchor_pps, cfg.anchor_pps_max);
  // Probes sit in the probe band, an order of magnitude below 500 pps.
  const double probe_pps =
      platform_->probing_rate_pps(scenario_.probe_sanitisation().kept[0]);
  EXPECT_GE(probe_pps, cfg.probe_pps_min);
  EXPECT_LE(probe_pps, cfg.probe_pps_max);
}

TEST_F(PlatformTest, PingReportsPerPacketAccounting) {
  const PingMeasurement m =
      platform_->ping(scenario_.vps()[4], scenario_.targets()[2]);
  ASSERT_TRUE(m.answered());
  EXPECT_GE(m.packets_received, 1);
  EXPECT_LE(m.packets_received, m.packets_sent);
}

TEST_F(PlatformTest, WeatherUnresponsiveTargetBillsButNeverAnswers) {
  FaultConfig weather;
  weather.enabled = true;
  weather.target_unresponsive_rate = 1.0;
  const FaultModel faults(scenario_.world(), weather);
  platform_->set_fault_model(&faults);

  const auto before = platform_->usage().credits;
  const PingMeasurement m =
      platform_->ping(scenario_.vps()[0], scenario_.targets()[0]);
  EXPECT_FALSE(m.answered());
  EXPECT_FALSE(m.min_rtt_ms.has_value());
  EXPECT_EQ(m.packets_received, 0);
  EXPECT_EQ(m.packets_sent, platform_->config().ping_packets);
  // The echo requests were sent and billed; only the replies were eaten.
  EXPECT_GT(platform_->usage().credits, before);
}

TEST_F(PlatformTest, DisabledWeatherLeavesPingsBitIdentical) {
  const FaultModel calm(scenario_.world(), FaultConfig{});  // enabled=false
  Platform with_weather(scenario_.world(), scenario_.latency());
  with_weather.set_fault_model(&calm);
  Platform without(scenario_.world(), scenario_.latency());
  for (int i = 0; i < 10; ++i) {
    const PingMeasurement a =
        with_weather.ping(scenario_.vps()[i], scenario_.targets()[i]);
    const PingMeasurement b =
        without.ping(scenario_.vps()[i], scenario_.targets()[i]);
    EXPECT_EQ(a.min_rtt_ms, b.min_rtt_ms);
    EXPECT_EQ(a.packets_received, b.packets_received);
  }
  EXPECT_EQ(with_weather.usage().credits, without.usage().credits);
}

TEST_F(PlatformTest, ProbingRateIsDeterministicPerHost) {
  const auto vp = scenario_.vps()[3];
  EXPECT_DOUBLE_EQ(platform_->probing_rate_pps(vp),
                   platform_->probing_rate_pps(vp));
}

TEST(Deployability, OriginalAlgorithmDoesNotFitAtlasRates) {
  // Section 5.1.3: probing every routable /24 from every VP is months of
  // dedicated probing at probe rates, versus days at the 2012 study's
  // 500 pps — the reason the paper could not geolocate millions of IPs.
  const DeployabilityAnswer a = analyze_deployability({});
  EXPECT_GT(a.packets_per_vp, 1e8 / 10.0);
  EXPECT_GT(a.days_at_probe_rate, 30.0);        // months at 4-12 pps
  EXPECT_LT(a.days_at_original_rate, a.days_at_probe_rate / 10.0);
  EXPECT_GT(a.total_packets, 1e11);
}

TEST(Deployability, ScalesLinearlyWithPrefixes) {
  DeployabilityQuestion q;
  q.target_prefixes = 1'000;
  const auto small = analyze_deployability(q);
  q.target_prefixes = 2'000;
  const auto big = analyze_deployability(q);
  EXPECT_NEAR(big.packets_per_vp, 2.0 * small.packets_per_vp, 1.0);
}

}  // namespace
}  // namespace geoloc::atlas
