// Property tests against brute-force reference implementations: the trie
// versus a linear scan, the region engine versus Monte-Carlo membership,
// and geodesy invariants under random sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "geo/geodesy.h"
#include "geo/region.h"
#include "net/prefix_table.h"
#include "util/rng.h"

namespace geoloc {
namespace {

// --------------------------------------------------------------------------
// PrefixTable vs a linear-scan reference.
class TrieVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieVsReference, LongestPrefixMatchAgrees) {
  auto gen = util::Pcg32{GetParam()};
  net::PrefixTable<int> trie;
  std::vector<std::pair<net::Prefix, int>> reference;

  for (int i = 0; i < 300; ++i) {
    const net::IPv4Address addr{gen()};
    const int len = 4 + static_cast<int>(gen.bounded(29));  // 4..32
    const net::Prefix p{addr, len};
    trie.insert(p, i);
    // Mirror overwrite semantics in the reference.
    const auto it = std::find_if(
        reference.begin(), reference.end(),
        [&](const auto& entry) { return entry.first == p; });
    if (it != reference.end()) {
      it->second = i;
    } else {
      reference.emplace_back(p, i);
    }
  }

  auto reference_lookup =
      [&](net::IPv4Address a) -> std::optional<std::pair<net::Prefix, int>> {
    std::optional<std::pair<net::Prefix, int>> best;
    for (const auto& [prefix, value] : reference) {
      if (!prefix.contains(a)) continue;
      if (!best || prefix.length() > best->first.length()) {
        best = {prefix, value};
      }
    }
    return best;
  };

  EXPECT_EQ(trie.size(), reference.size());
  for (int i = 0; i < 1'000; ++i) {
    // Half the probes reuse inserted networks to guarantee hits.
    net::IPv4Address probe{gen()};
    if (gen.chance(0.5) && !reference.empty()) {
      const auto& p = reference[gen.index(reference.size())].first;
      probe = net::IPv4Address{p.network().value() + gen.bounded(16)};
    }
    const auto got = trie.lookup(probe);
    const auto want = reference_lookup(probe);
    ASSERT_EQ(got.has_value(), want.has_value()) << probe.to_string();
    if (got) {
      EXPECT_EQ(got->first, want->first) << probe.to_string();
      EXPECT_EQ(got->second, want->second) << probe.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieVsReference,
                         ::testing::Values(3, 7, 31, 127, 8191));

// --------------------------------------------------------------------------
// Region centroid vs Monte-Carlo membership: the centroid the sampler
// reports must itself satisfy every constraint, and the Monte-Carlo area
// estimate over the seed disk must agree with the sampler's within noise.
class RegionVsMonteCarlo : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegionVsMonteCarlo, AreaEstimatesAgree) {
  auto gen = util::Pcg32{GetParam()};
  const geo::GeoPoint truth{gen.uniform(-50.0, 50.0),
                            gen.uniform(-160.0, 160.0)};
  std::vector<geo::Disk> disks;
  for (int i = 0; i < 4; ++i) {
    const double d = gen.uniform(50.0, 800.0);
    const geo::GeoPoint vp =
        geo::destination(truth, gen.uniform(0.0, 360.0), d);
    disks.push_back(geo::Disk{vp, d * gen.uniform(1.1, 1.6) + 40.0});
  }

  const geo::Region region = geo::intersect_disks(disks);
  ASSERT_FALSE(region.empty);
  EXPECT_TRUE(geo::region_contains(disks, region.centroid));

  // Monte-Carlo estimate over the smallest (seed) disk.
  const auto pruned = geo::prune_dominated(disks);
  const geo::Disk& seed = pruned.front();
  const int n = 4'000;
  int inside = 0;
  for (int i = 0; i < n; ++i) {
    // Uniform over the disk: r ~ sqrt(u) * R.
    const double r = seed.radius_km * std::sqrt(gen.uniform());
    const geo::GeoPoint p =
        geo::destination(seed.center, gen.uniform(0.0, 360.0), r);
    inside += geo::region_contains(disks, p);
  }
  const double mc_area = geo::kPi * seed.radius_km * seed.radius_km *
                         static_cast<double>(inside) / n;
  // Two coarse estimators of the same area: agree within 25% + a floor.
  EXPECT_NEAR(region.area_km2, mc_area,
              0.25 * std::max(region.area_km2, mc_area) + 2'000.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionVsMonteCarlo,
                         ::testing::Values(11, 22, 44, 88, 176));

// --------------------------------------------------------------------------
// Geodesy invariants under random sweeps.
class GeodesyInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeodesyInvariants, TriangleInequalityHolds) {
  auto gen = util::Pcg32{GetParam()};
  for (int i = 0; i < 200; ++i) {
    const geo::GeoPoint a{gen.uniform(-80.0, 80.0), gen.uniform(-179.0, 179.0)};
    const geo::GeoPoint b{gen.uniform(-80.0, 80.0), gen.uniform(-179.0, 179.0)};
    const geo::GeoPoint c{gen.uniform(-80.0, 80.0), gen.uniform(-179.0, 179.0)};
    EXPECT_LE(geo::distance_km(a, c),
              geo::distance_km(a, b) + geo::distance_km(b, c) + 1e-6);
  }
}

TEST_P(GeodesyInvariants, BearingPointsTowardDestination) {
  auto gen = util::Pcg32{GetParam() + 1000};
  for (int i = 0; i < 200; ++i) {
    const geo::GeoPoint a{gen.uniform(-70.0, 70.0), gen.uniform(-170.0, 170.0)};
    const geo::GeoPoint b{gen.uniform(-70.0, 70.0), gen.uniform(-170.0, 170.0)};
    const double d = geo::distance_km(a, b);
    if (d < 1.0 || d > 15'000.0) continue;
    // Travelling 10% of the distance along the initial bearing must close
    // the gap by roughly that amount.
    const geo::GeoPoint step =
        geo::destination(a, geo::initial_bearing_deg(a, b), d * 0.1);
    EXPECT_NEAR(geo::distance_km(step, b), d * 0.9, d * 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeodesyInvariants, ::testing::Values(5, 50));

}  // namespace
}  // namespace geoloc
