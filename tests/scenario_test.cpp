// Integration tests of the assembled scenario and its measurement matrices.
#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "geo/constants.h"
#include "geo/geodesy.h"
#include "scenario/presets.h"
#include "test_scenario.h"

namespace geoloc::scenario {
namespace {

using geoloc::testing::small_scenario;
using geoloc::testing::small_scenario_alt_seed;

TEST(Scenario, SanitisedSetsHaveExpectedSizes) {
  const auto& s = small_scenario();
  const auto& cfg = s.config().catalog;
  EXPECT_EQ(s.targets().size(),
            static_cast<std::size_t>(cfg.anchor_quota.total()));
  EXPECT_EQ(s.vps().size(),
            s.targets().size() + static_cast<std::size_t>(cfg.probes_kept));
}

TEST(Scenario, AnchorsComeFirstInVpSet) {
  const auto& s = small_scenario();
  for (std::size_t i = 0; i < s.targets().size(); ++i) {
    EXPECT_EQ(s.vps()[i], s.targets()[i]);
  }
}

TEST(Scenario, IndexLookupsRoundTrip) {
  const auto& s = small_scenario();
  EXPECT_EQ(s.vp_index(s.vps()[5]), 5u);
  EXPECT_EQ(s.target_index(s.targets()[7]), 7u);
  EXPECT_THROW(s.vp_index(sim::kInvalidHost), std::out_of_range);
}

TEST(Scenario, TargetRttMatrixShapeAndContent) {
  const auto& s = small_scenario();
  const RttMatrix& m = s.target_rtts();
  EXPECT_EQ(m.rows(), s.vps().size());
  EXPECT_EQ(m.cols(), s.targets().size());
  std::size_t present = 0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const float v = m.at(r, c);
      if (!RttMatrix::is_missing(v)) {
        EXPECT_GT(v, 0.0F);
        EXPECT_LT(v, 1'000.0F);
        ++present;
      }
    }
  }
  // Targets are responsive anchors: nearly every measurement succeeds.
  EXPECT_GT(static_cast<double>(present) / (m.rows() * m.cols()), 0.999);
}

TEST(Scenario, TargetRttsRespectSoi) {
  const auto& s = small_scenario();
  const RttMatrix& m = s.target_rtts();
  for (std::size_t r = 0; r < m.rows(); r += 37) {
    for (std::size_t c = 0; c < m.cols(); c += 11) {
      const float v = m.at(r, c);
      if (RttMatrix::is_missing(v)) continue;
      const double d =
          geo::distance_km(s.world().host(s.vps()[r]).true_location,
                           s.world().host(s.targets()[c]).true_location);
      EXPECT_FALSE(geo::violates_soi(v, d)) << "r=" << r << " c=" << c;
    }
  }
}

TEST(Scenario, RepresentativeRttsCorrelateWithTargetRtts) {
  // Representatives are mostly colocated with their target, so the two
  // campaigns must broadly agree for any given VP.
  const auto& s = small_scenario();
  const RttMatrix& t = s.target_rtts();
  const RttMatrix& rep = s.representative_rtts();
  ASSERT_EQ(rep.rows(), t.rows());
  ASSERT_EQ(rep.cols(), t.cols());
  int close = 0, total = 0;
  for (std::size_t r = 0; r < t.rows(); r += 17) {
    for (std::size_t c = 0; c < t.cols(); c += 7) {
      if (RttMatrix::is_missing(t.at(r, c)) ||
          RttMatrix::is_missing(rep.at(r, c))) {
        continue;
      }
      ++total;
      close += std::abs(t.at(r, c) - rep.at(r, c)) <
               0.5F * std::max(t.at(r, c), rep.at(r, c)) + 3.0F;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(close) / total, 0.8);
}

TEST(Scenario, FingerprintDistinguishesConfigs) {
  auto a = scenario::small_config();
  auto b = scenario::small_config();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.seed = 999;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  auto c = scenario::small_config();
  c.latency.overhead_mean_ms += 0.1;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  auto d = scenario::small_config();
  d.world.poorly_connected_city_prob[2] += 0.01;
  EXPECT_NE(a.fingerprint(), d.fingerprint());
}

TEST(Scenario, DifferentSeedsProduceDifferentWorlds) {
  const auto& a = small_scenario();
  const auto& b = small_scenario_alt_seed();
  ASSERT_EQ(a.targets().size(), b.targets().size());
  bool any_diff = false;
  for (std::size_t i = 0; i < a.targets().size() && !any_diff; ++i) {
    any_diff = !(a.world().host(a.targets()[i]).true_location ==
                 b.world().host(b.targets()[i]).true_location);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Scenario, WithoutWebThrowsOnWebAccess) {
  auto cfg = scenario::small_config(/*seed=*/3);
  cfg.cache_dir = "";
  const Scenario s = Scenario::without_web(cfg);
  EXPECT_FALSE(s.has_web());
  EXPECT_THROW(static_cast<void>(s.web()), std::logic_error);
}

TEST(Scenario, PopulationGridIsLazilyAvailable) {
  const auto& s = small_scenario();
  EXPECT_GT(s.population().density_per_km2(
                s.world().host(s.targets()[0]).true_location),
            0.0);
}

TEST(RttMatrixIo, SaveLoadRoundTrip) {
  RttMatrix m(3, 2);
  m.set(0, 0, 1.5F);
  m.set(2, 1, 42.0F);
  const std::string path = ::testing::TempDir() + "geoloc-rtt-test.bin";
  ASSERT_TRUE(m.save(path, /*tag=*/7));
  RttMatrix loaded;
  ASSERT_TRUE(loaded.load(path, 7));
  EXPECT_EQ(loaded.rows(), 3u);
  EXPECT_EQ(loaded.cols(), 2u);
  EXPECT_FLOAT_EQ(loaded.at(0, 0), 1.5F);
  EXPECT_FLOAT_EQ(loaded.at(2, 1), 42.0F);
  EXPECT_TRUE(RttMatrix::is_missing(loaded.at(1, 1)));
  // A wrong tag must refuse to load.
  RttMatrix wrong;
  EXPECT_FALSE(wrong.load(path, 8));
  std::remove(path.c_str());
}

TEST(RttMatrixIo, MissingFileFailsGracefully) {
  RttMatrix m;
  EXPECT_FALSE(m.load("/nonexistent/geoloc.bin", 1));
}

TEST(Scenario, DiskCacheReproducesMatrices) {
  const std::string dir = ::testing::TempDir() + "geoloc-cache-test";
  std::filesystem::remove_all(dir);
  auto cfg = scenario::small_config(/*seed=*/11);
  cfg.cache_dir = dir;

  const Scenario first(cfg);
  const float v = first.target_rtts().at(3, 3);

  const Scenario second(cfg);  // loads from cache
  EXPECT_EQ(second.target_rtts().at(3, 3), v);
  EXPECT_FALSE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(Presets, PaperConfigMatchesPaperNumbers) {
  const auto cfg = scenario::paper_config();
  EXPECT_EQ(cfg.catalog.anchor_quota.total(), 723);
  EXPECT_EQ(cfg.catalog.anchors_misgeolocated, 9);
  EXPECT_EQ(cfg.catalog.probes_kept, 10'000);
  EXPECT_EQ(cfg.catalog.probes_misgeolocated, 96);
  EXPECT_EQ(cfg.catalog.anchor_as_pool, 561);
}

}  // namespace
}  // namespace geoloc::scenario
