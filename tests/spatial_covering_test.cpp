#include "spatial/covering.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "geo/geodesy.h"

namespace geoloc::spatial {
namespace {

std::mt19937 rng(7);

geo::GeoPoint random_point() {
  std::uniform_real_distribution<double> lat(-90.0, 90.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  return geo::GeoPoint{lat(rng), lon(rng)};
}

/// True when `p` lies in exactly one cell of the covering.
int cells_containing(const std::vector<CellId>& cover,
                     const geo::GeoPoint& p) {
  int n = 0;
  const std::uint64_t leaf = CellId::leaf_token(p);
  for (const CellId& cell : cover) {
    if (leaf >= cell.token_lo() && leaf < cell.token_hi()) ++n;
  }
  return n;
}

void expect_sorted_disjoint(const std::vector<CellId>& cover) {
  for (std::size_t i = 1; i < cover.size(); ++i) {
    EXPECT_LE(cover[i - 1].token_hi(), cover[i].token_lo())
        << cover[i - 1].to_string() << " vs " << cover[i].to_string();
  }
}

TEST(SpatialCovering, DiskCoveringIsASupersetOfTheDisk) {
  for (int trial = 0; trial < 40; ++trial) {
    const geo::Disk disk{random_point(),
                         std::uniform_real_distribution<double>(1.0, 2000.0)(rng)};
    const auto cover = cover_disk(disk);
    ASSERT_FALSE(cover.empty());
    expect_sorted_disjoint(cover);
    // Random points inside the disk land in exactly one covering cell.
    std::uniform_real_distribution<double> r(0.0, disk.radius_km);
    std::uniform_real_distribution<double> b(0.0, 360.0);
    for (int i = 0; i < 50; ++i) {
      const geo::GeoPoint p = geo::destination(disk.center, b(rng), r(rng));
      EXPECT_EQ(cells_containing(cover, p), 1)
          << "disk at " << disk.center.lat_deg << "," << disk.center.lon_deg
          << " r=" << disk.radius_km;
    }
  }
}

TEST(SpatialCovering, DiskCoveringRespectsTheBudget) {
  for (const int budget : {4, 16, 64, 256}) {
    CoveringOptions opt;
    opt.max_cells = budget;
    const auto cover = cover_disk(geo::Disk{{48.85, 2.35}, 120.0}, opt);
    EXPECT_LE(static_cast<int>(cover.size()), budget);
    EXPECT_FALSE(cover.empty());
  }
}

TEST(SpatialCovering, TighterBudgetMeansCoarserNeverWrongCovering) {
  const geo::Disk disk{{40.7, -74.0}, 50.0};
  CoveringOptions small_opt;
  small_opt.max_cells = 4;
  const auto coarse = cover_disk(disk, small_opt);
  for (int i = 0; i < 100; ++i) {
    std::uniform_real_distribution<double> r(0.0, disk.radius_km);
    std::uniform_real_distribution<double> b(0.0, 360.0);
    const geo::GeoPoint p = geo::destination(disk.center, b(rng), r(rng));
    EXPECT_EQ(cells_containing(coarse, p), 1);
  }
}

TEST(SpatialCovering, DiskCoveringIsDeterministic) {
  const geo::Disk disk{{-33.9, 151.2}, 300.0};
  const auto a = cover_disk(disk);
  const auto b = cover_disk(disk);
  EXPECT_EQ(a, b);
}

TEST(SpatialCovering, PolarDiskIsCovered) {
  const geo::Disk disk{{89.5, 0.0}, 200.0};
  const auto cover = cover_disk(disk);
  ASSERT_FALSE(cover.empty());
  // Points around the pole (every longitude!) stay covered.
  for (double lon = -180.0; lon < 180.0; lon += 15.0) {
    EXPECT_EQ(cells_containing(cover, {89.2, lon}), 1) << "lon " << lon;
  }
  EXPECT_EQ(cells_containing(cover, {90.0, 0.0}), 1);
}

TEST(SpatialCovering, AntiMeridianDiskIsCovered) {
  const geo::Disk disk{{10.0, 179.8}, 100.0};
  const auto cover = cover_disk(disk);
  EXPECT_EQ(cells_containing(cover, {10.0, 179.9}), 1);
  EXPECT_EQ(cells_containing(cover, {10.0, -179.7}), 1);  // across the seam
}

TEST(SpatialCovering, RectCoveringIsExactInDegreeSpace) {
  for (int trial = 0; trial < 40; ++trial) {
    const geo::GeoPoint c = random_point();
    const auto rect = LatLonRect::from_degrees(c.lat_deg - 2.0, c.lat_deg + 2.0,
                                               c.lon_deg - 3.0, c.lon_deg + 3.0);
    const auto cover = cover_rect(rect);
    ASSERT_FALSE(cover.empty());
    expect_sorted_disjoint(cover);
    for (int i = 0; i < 50; ++i) {
      std::uniform_real_distribution<double> dlat(-1.99, 1.99);
      std::uniform_real_distribution<double> dlon(-2.99, 2.99);
      const geo::GeoPoint p{
          std::clamp(c.lat_deg + dlat(rng), -90.0, 90.0),
          geo::normalize_lon(c.lon_deg + dlon(rng))};
      if (!rect.contains(p)) continue;  // wrapped edge cases
      EXPECT_EQ(cells_containing(cover, p), 1)
          << p.lat_deg << "," << p.lon_deg;
    }
  }
}

TEST(SpatialCovering, WrappedRectCoversBothSidesOfTheSeam) {
  const auto rect = LatLonRect::from_degrees(-10.0, 10.0, 175.0, 185.0);
  EXPECT_TRUE(rect.wraps());
  EXPECT_TRUE(rect.contains({0.0, 179.0}));
  EXPECT_TRUE(rect.contains({0.0, -178.0}));
  EXPECT_FALSE(rect.contains({0.0, 0.0}));
  const auto cover = cover_rect(rect);
  EXPECT_EQ(cells_containing(cover, {0.0, 179.0}), 1);
  EXPECT_EQ(cells_containing(cover, {0.0, -178.0}), 1);
}

TEST(SpatialCovering, FullLongitudeRect) {
  const auto rect = LatLonRect::from_degrees(80.0, 90.0, -200.0, 200.0);
  EXPECT_TRUE(rect.full_lon);
  const auto cover = cover_rect(rect);
  for (double lon = -180.0; lon < 180.0; lon += 30.0) {
    EXPECT_EQ(cells_containing(cover, {85.0, lon}), 1);
  }
  EXPECT_EQ(cells_containing(cover, {0.0, 0.0}), 0);  // outside in latitude
}

TEST(SpatialCovering, EmptyRectHasNoCovering) {
  LatLonRect rect = LatLonRect::from_degrees(10.0, 20.0, 0.0, 1.0);
  rect.lat_lo = 20.0;
  rect.lat_hi = 10.0;  // inverted = empty
  EXPECT_TRUE(cover_rect(rect).empty());
}

TEST(SpatialCovering, BudgetFromEnvClampsAndRejectsGarbage) {
  const auto with_env = [](const char* value, int expected) {
    if (value == nullptr) {
      ::unsetenv("GEOLOC_SPATIAL_MAX_CELLS");
    } else {
      ::setenv("GEOLOC_SPATIAL_MAX_CELLS", value, 1);
    }
    EXPECT_EQ(covering_budget_from_env(), expected)
        << "for " << (value ? value : "(unset)");
  };
  with_env(nullptr, 64);
  with_env("128", 128);
  with_env("1", 4);         // clamped up
  with_env("999999", 4096); // clamped down
  with_env("8x", 64);       // trailing junk rejected
  with_env("-5", 64);
  with_env("", 64);
  ::unsetenv("GEOLOC_SPATIAL_MAX_CELLS");
}

}  // namespace
}  // namespace geoloc::spatial
