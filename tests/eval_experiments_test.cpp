// Integration tests of the experiment runners on the small scenario — each
// asserting the *shape* the corresponding paper figure relies on.
#include "eval/experiments.h"

#include <gtest/gtest.h>

#include "core/million_scale.h"
#include "eval/metrics.h"
#include "scenario/presets.h"
#include "test_scenario.h"
#include "util/stats.h"

namespace geoloc::eval {
namespace {

using geoloc::testing::small_scenario;

TEST(AllVpErrors, OnePerTargetAndCached) {
  const auto& s = small_scenario();
  const auto& errors = all_vp_errors(s);
  EXPECT_EQ(errors.size(), s.targets().size());
  // Second call returns the cached vector (same address).
  EXPECT_EQ(&all_vp_errors(s), &errors);
}

TEST(AllVpErrors, MostTargetsResolve) {
  const auto& errors = all_vp_errors(small_scenario());
  int failures = 0;
  for (double e : errors) failures += e < 0.0;
  EXPECT_LT(failures, static_cast<int>(errors.size() / 20));
}

TEST(SubsetSweep, ErrorDecreasesWithSubsetSize) {
  // Figure 2a's shape: more VPs, lower median error.
  const auto& s = small_scenario();
  const int sizes[] = {10, 100, 800};
  const auto sweep = run_subset_size_sweep(s, sizes, /*trials=*/5);
  ASSERT_EQ(sweep.size(), 3u);
  const double at10 = util::median(sweep[0].trial_median_errors_km);
  const double at100 = util::median(sweep[1].trial_median_errors_km);
  const double at800 = util::median(sweep[2].trial_median_errors_km);
  EXPECT_GT(at10, at100);
  EXPECT_GT(at100, at800);
}

TEST(SubsetSweep, TrialsVaryForSmallSubsets) {
  const auto& s = small_scenario();
  const int sizes[] = {20};
  const auto sweep = run_subset_size_sweep(s, sizes, /*trials=*/6);
  const auto& medians = sweep[0].trial_median_errors_km;
  ASSERT_EQ(medians.size(), 6u);
  EXPECT_GT(util::max_of(medians) - util::min_of(medians), 1.0);
}

TEST(RemoveCloseVps, ErrorGrowsWithExclusionRadius) {
  // Figure 2c's shape: removing close VPs destroys accuracy.
  const auto& s = small_scenario();
  const double radii[] = {0.0, 40.0, 500.0};
  const auto sweep = run_remove_close_vps(s, radii);
  ASSERT_EQ(sweep.size(), 3u);
  const double all = util::median(sweep[0].errors_km);
  const double no40 = util::median(sweep[1].errors_km);
  const double no500 = util::median(sweep[2].errors_km);
  EXPECT_GT(no40, all * 1.5);
  EXPECT_GT(no500, no40);
  // City-level accuracy collapses once same-city VPs are gone.
  EXPECT_LT(city_level_fraction(sweep[1].errors_km),
            city_level_fraction(sweep[0].errors_km));
}

TEST(RepSelection, FewChosenVpsMatchAllVps) {
  // Figure 3a's shape: 10 representative-selected VPs ~ the full set.
  const auto& s = small_scenario();
  const int ks[] = {1, 10, 0};
  const auto sweep = run_rep_selection(s, ks);
  ASSERT_EQ(sweep.size(), 3u);
  const double k10 = util::median(sweep[1].errors_km);
  const double all = util::median(sweep[2].errors_km);
  EXPECT_LT(k10, all * 2.5);
  EXPECT_LT(all, k10 * 2.5);
}

TEST(TwoStepSweep, AccuracyFlatCostNot) {
  // Figures 3b/3c: accuracy is insensitive to the first-step size while
  // the measurement cost is far below the original algorithm's.
  const auto& s = small_scenario();
  const int sizes[] = {10, 50, 200};
  const auto sweep = run_two_step_sweep(s, sizes);
  ASSERT_EQ(sweep.size(), 3u);
  const std::uint64_t original = core::original_algorithm_pings(s);
  for (const auto& sw : sweep) {
    EXPECT_LT(sw.total_pings, original / 2);
    EXPECT_LT(sw.failed_targets, s.targets().size() / 10);
  }
  const double m0 = util::median(sweep[0].errors_km);
  const double m2 = util::median(sweep[2].errors_km);
  EXPECT_LT(std::abs(m0 - m2), std::max(m0, m2));  // same order of magnitude
}

TEST(PerContinent, PartitionsAllResolvedTargets) {
  const auto& s = small_scenario();
  const auto per_continent = run_per_continent(s);
  ASSERT_EQ(per_continent.size(), 6u);
  std::size_t total = 0;
  for (const auto& ce : per_continent) total += ce.errors_km.size();
  std::size_t resolved = 0;
  for (double e : all_vp_errors(s)) resolved += e >= 0.0;
  EXPECT_EQ(total, resolved);
}

TEST(TrialsFromEnv, FallbackWhenUnset) {
  unsetenv("GEOLOC_TRIALS");
  EXPECT_EQ(trials_from_env(17), 17);
  setenv("GEOLOC_TRIALS", "5", 1);
  EXPECT_EQ(trials_from_env(17), 5);
  setenv("GEOLOC_TRIALS", "garbage", 1);
  EXPECT_EQ(trials_from_env(17), 17);
  unsetenv("GEOLOC_TRIALS");
}

TEST(FailureWeatherSweep, CalmCompletesStormDegradesButSurvives) {
  const auto& s = small_scenario();
  const std::vector<WeatherSpec> weathers{
      {"calm", scenario::calm_weather()},
      {"stormy", scenario::stormy_weather()},
  };
  const auto sweep = run_failure_sensitivity(s, weathers, /*max_vps=*/60);
  ASSERT_EQ(sweep.size(), 2u);
  const FailureSweepPoint& calm = sweep[0];
  const FailureSweepPoint& stormy = sweep[1];

  // Calm skies: the executor degenerates to the plain campaign.
  EXPECT_EQ(calm.label, "calm");
  EXPECT_EQ(calm.report.abandoned, 0u);
  EXPECT_EQ(calm.report.retries, 0u);
  EXPECT_EQ(calm.report.completed, calm.report.requested);
  // A stray empty intersection is possible even in calm skies; what calm
  // weather rules out is *measurement starvation*.
  EXPECT_LT(calm.unlocatable, s.targets().size() / 10);
  EXPECT_GT(calm.located, s.targets().size() / 2);

  // Storm: retries and abandonments happen, the campaign still finishes and
  // every target gets a verdict.
  EXPECT_GT(stormy.report.retries, 0u);
  EXPECT_GT(stormy.report.abandoned, 0u);
  EXPECT_EQ(stormy.report.completed + stormy.report.abandoned,
            stormy.report.requested);
  EXPECT_GT(stormy.report.credits_wasted, 0u);
  EXPECT_EQ(stormy.located + stormy.degraded + stormy.unlocatable,
            s.targets().size());
  // Weather can only lose constraints, never gain them.
  EXPECT_LE(stormy.located, calm.located);
  // The accounting is kept; the raw measurements are not.
  EXPECT_TRUE(stormy.report.results.empty());
  EXPECT_GT(stormy.median_error_km, 0.0);
}

TEST(FailureWeatherSweep, DeterministicAcrossRuns) {
  const auto& s = small_scenario();
  const std::vector<WeatherSpec> weathers{
      {"stormy", scenario::stormy_weather()}};
  const auto a = run_failure_sensitivity(s, weathers, /*max_vps=*/30);
  const auto b = run_failure_sensitivity(s, weathers, /*max_vps=*/30);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].report.attempts, b[0].report.attempts);
  EXPECT_EQ(a[0].report.abandoned, b[0].report.abandoned);
  EXPECT_EQ(a[0].located, b[0].located);
  EXPECT_DOUBLE_EQ(a[0].median_error_km, b[0].median_error_km);
}

TEST(Metrics, ThresholdHelpers) {
  const std::vector<double> errors{0.5, 10.0, 39.9, 41.0, 500.0};
  EXPECT_DOUBLE_EQ(city_level_fraction(errors), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(street_level_fraction(errors), 1.0 / 5.0);
}

}  // namespace
}  // namespace geoloc::eval
