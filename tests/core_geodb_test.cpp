#include "core/geodb.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "geo/geodesy.h"
#include "test_scenario.h"
#include "util/stats.h"

namespace geoloc::core {
namespace {

using geoloc::testing::small_scenario;

std::vector<double> errors_of(const GeoDatabase& db) {
  const auto& s = small_scenario();
  std::vector<double> errors;
  for (sim::HostId t : s.targets()) {
    const auto entry = db.lookup(s.world().host(t).addr);
    if (!entry) continue;
    errors.push_back(geo::distance_km(entry->location,
                                      s.world().host(t).true_location));
  }
  return errors;
}

TEST(GeoDb, CoversEveryTarget) {
  const auto db = GeoDatabase::build(small_scenario(), GeoDbProfile::IPinfo);
  EXPECT_EQ(errors_of(db).size(), small_scenario().targets().size());
}

TEST(GeoDb, UnknownAddressMisses) {
  const auto db = GeoDatabase::build(small_scenario(), GeoDbProfile::IPinfo);
  EXPECT_FALSE(db.lookup(net::IPv4Address{250, 250, 250, 250}).has_value());
}

TEST(GeoDb, IPinfoBeatsMaxMindAtCityLevel) {
  // Figure 7's ordering: IPinfo > MaxMind free at the 40 km threshold.
  const auto ipinfo = GeoDatabase::build(small_scenario(), GeoDbProfile::IPinfo);
  const auto maxmind =
      GeoDatabase::build(small_scenario(), GeoDbProfile::MaxMindFree);
  const double ip_city = eval::city_level_fraction(errors_of(ipinfo));
  const double mm_city = eval::city_level_fraction(errors_of(maxmind));
  EXPECT_GT(ip_city, mm_city + 0.15);
  EXPECT_GT(ip_city, 0.8);   // paper: 89%
  EXPECT_LT(mm_city, 0.75);  // paper: 55%
  EXPECT_GT(mm_city, 0.35);
}

TEST(GeoDb, EntriesCarryProvenance) {
  const auto db = GeoDatabase::build(small_scenario(), GeoDbProfile::IPinfo);
  int with_source = 0;
  for (sim::HostId t : small_scenario().targets()) {
    const auto entry = db.lookup(small_scenario().world().host(t).addr);
    ASSERT_TRUE(entry.has_value());
    with_source += !entry->source.empty();
  }
  EXPECT_EQ(with_source,
            static_cast<int>(small_scenario().targets().size()));
}

TEST(GeoDb, IPinfoSourcesIncludeLatencyAndHints) {
  const auto db = GeoDatabase::build(small_scenario(), GeoDbProfile::IPinfo);
  std::set<std::string_view> sources;
  for (sim::HostId t : small_scenario().targets()) {
    sources.insert(db.lookup(small_scenario().world().host(t).addr)->source);
  }
  EXPECT_TRUE(sources.contains("latency"));
  EXPECT_TRUE(sources.contains("geofeed") || sources.contains("dns"));
}

TEST(GeoDb, BuildsAreDeterministic) {
  const auto a = GeoDatabase::build(small_scenario(), GeoDbProfile::IPinfo);
  const auto b = GeoDatabase::build(small_scenario(), GeoDbProfile::IPinfo);
  const auto addr =
      small_scenario().world().host(small_scenario().targets()[0]).addr;
  EXPECT_EQ(a.lookup(addr)->location, b.lookup(addr)->location);
}

TEST(GeoDb, ProfileNames) {
  EXPECT_EQ(to_string(GeoDbProfile::IPinfo), "IPinfo");
  EXPECT_EQ(to_string(GeoDbProfile::MaxMindFree), "MaxMind (Free)");
}

}  // namespace
}  // namespace geoloc::core
