#include "core/million_scale.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "eval/metrics.h"
#include "geo/geodesy.h"
#include "scenario/presets.h"
#include "test_scenario.h"
#include "util/stats.h"

namespace geoloc::core {
namespace {

using geoloc::testing::small_scenario;

TEST(MillionScale, SelectionReturnsKRows) {
  const auto& s = small_scenario();
  const MillionScale ms(s);
  for (int k : {1, 3, 10}) {
    const auto rows = ms.select_vps_by_representatives(0, k);
    EXPECT_EQ(rows.size(), static_cast<std::size_t>(k));
    const std::set<std::size_t> unique(rows.begin(), rows.end());
    EXPECT_EQ(unique.size(), rows.size());
  }
}

TEST(MillionScale, SelectionNeverPicksTheTargetItself) {
  const auto& s = small_scenario();
  const MillionScale ms(s);
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    for (std::size_t row : ms.select_vps_by_representatives(col, 3)) {
      EXPECT_NE(s.vps()[row], s.targets()[col]);
    }
  }
}

TEST(MillionScale, SelectionIsSortedByRepresentativeRtt) {
  const auto& s = small_scenario();
  const MillionScale ms(s);
  const auto rows = ms.select_vps_by_representatives(5, 10);
  const auto& reps = s.representative_rtts();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(reps.at(rows[i - 1], 5), reps.at(rows[i], 5));
  }
}

TEST(MillionScale, SelectedVpsAreGeographicallyClose) {
  // The whole premise of the paper: low representative RTT implies
  // geographic proximity. The single best VP must usually be much closer
  // than a random VP.
  const auto& s = small_scenario();
  const MillionScale ms(s);
  std::vector<double> chosen_d;
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const auto rows = ms.select_vps_by_representatives(col, 1);
    ASSERT_FALSE(rows.empty());
    chosen_d.push_back(geo::distance_km(
        s.world().host(s.vps()[rows[0]]).true_location,
        s.world().host(s.targets()[col]).true_location));
  }
  EXPECT_LT(util::median(chosen_d), 100.0);
}

TEST(MillionScale, GeolocateWithSelectedVpsIsAccurate) {
  const auto& s = small_scenario();
  const MillionScale ms(s);
  std::vector<double> errors;
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const auto rows = ms.select_vps_by_representatives(col, 10);
    const CbgResult r = ms.geolocate(rows, col);
    if (!r.ok) continue;
    errors.push_back(ms.error_km(r.estimate, col));
  }
  ASSERT_GT(errors.size(), s.targets().size() * 9 / 10);
  EXPECT_LT(util::median(errors), 150.0);
}

TEST(MillionScale, ObservationsSkipSelfAndMissing) {
  const auto& s = small_scenario();
  const MillionScale ms(s);
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < s.vps().size(); ++r) rows.push_back(r);
  const auto obs = ms.observations(rows, 0);
  EXPECT_LT(obs.size(), s.vps().size());       // at least self excluded
  EXPECT_GE(obs.size(), s.vps().size() - 10);  // but only a handful missing
}

TEST(GreedyCoverage, PrefixesNestAndAreUnique) {
  const auto& s = small_scenario();
  const auto big = greedy_coverage_rows(s, 50);
  const auto small = greedy_coverage_rows(s, 20);
  ASSERT_EQ(big.size(), 50u);
  ASSERT_EQ(small.size(), 20u);
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i], big[i]);  // greedy sequence nests
  }
  const std::set<std::size_t> unique(big.begin(), big.end());
  EXPECT_EQ(unique.size(), big.size());
}

TEST(GreedyCoverage, SpreadsAcrossContinents) {
  const auto& s = small_scenario();
  const auto rows = greedy_coverage_rows(s, 30);
  std::set<sim::Continent> continents;
  for (std::size_t r : rows) {
    continents.insert(
        s.world().place(s.world().host(s.vps()[r]).place).continent);
  }
  EXPECT_GE(continents.size(), 5u);
}

TEST(GreedyCoverage, CountClampedToPopulation) {
  const auto& s = small_scenario();
  const auto rows = greedy_coverage_rows(s, s.vps().size() + 100);
  EXPECT_EQ(rows.size(), s.vps().size());
  EXPECT_TRUE(greedy_coverage_rows(s, 0).empty());
}

TEST(TwoStep, RunProducesEstimateAndAccounting) {
  const auto& s = small_scenario();
  const TwoStepSelector selector(s, greedy_coverage_rows(s, 50));
  const MillionScale ms(s);
  int ok = 0;
  std::vector<double> errors;
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const TwoStepOutcome o = selector.run(col);
    if (!o.ok) continue;
    ++ok;
    EXPECT_GT(o.step1_pings, 0u);
    EXPECT_GT(o.step2_pings, 0u);
    EXPECT_EQ(o.final_pings, 1u);
    EXPECT_GT(o.region_vps, 0u);
    EXPECT_NE(s.vps()[o.chosen_row], s.targets()[col]);
    errors.push_back(ms.error_km(o.estimate, col));
  }
  EXPECT_GT(ok, static_cast<int>(s.targets().size() * 9 / 10));
  EXPECT_LT(util::median(errors), 200.0);
}

TEST(TwoStep, CostsFarBelowOriginalAlgorithm) {
  const auto& s = small_scenario();
  const TwoStepSelector selector(s, greedy_coverage_rows(s, 50));
  std::uint64_t total = 0;
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const TwoStepOutcome o = selector.run(col);
    total += o.step1_pings + o.step2_pings + o.final_pings;
  }
  EXPECT_LT(total, original_algorithm_pings(s) / 2);
}

TEST(TwoStep, Step1CostBoundedBySubsetSize) {
  const auto& s = small_scenario();
  const TwoStepSelector selector(s, greedy_coverage_rows(s, 25));
  const TwoStepOutcome o = selector.run(0);
  EXPECT_LE(o.step1_pings, 25u * 3u);
}

TEST(ResilientRepresentatives, CalmWeatherPicksResponsiveTopScorers) {
  const auto& s = small_scenario();
  for (sim::HostId target : s.targets()) {
    const RepresentativeFallback f = resilient_representatives(s, target);
    EXPECT_LE(f.chosen.size(), 3u);
    for (sim::HostId rep : f.chosen) {
      EXPECT_TRUE(s.world().host(rep).responsive);
    }
    // No skips means nothing had to be substituted.
    if (f.skipped_unresponsive == 0) {
      EXPECT_FALSE(f.substituted);
    }
  }
}

TEST(ResilientRepresentatives, WeatherDarkRepsAreSkippedNotChosen) {
  const auto& s = small_scenario();
  auto weather = scenario::stormy_weather();
  weather.target_unresponsive_rate = 0.5;  // plenty of dark reps
  const atlas::FaultModel faults(s.world(), weather);

  std::size_t skipped_total = 0;
  for (sim::HostId target : s.targets()) {
    const RepresentativeFallback f =
        resilient_representatives(s, target, &faults);
    skipped_total += f.skipped_unresponsive;
    for (sim::HostId rep : f.chosen) {
      EXPECT_FALSE(faults.target_unresponsive(rep));
      EXPECT_TRUE(s.world().host(rep).responsive);
    }
  }
  EXPECT_GT(skipped_total, 0u);

  // With a quota below the three hitlist reps there is a next-best entry to
  // fall back on: when a top scorer is dark, the fallback substitutes it.
  std::size_t substituted_targets = 0;
  for (sim::HostId target : s.targets()) {
    const RepresentativeFallback f =
        resilient_representatives(s, target, &faults, /*count=*/2);
    substituted_targets += f.substituted;
    EXPECT_LE(f.chosen.size(), 2u);
  }
  EXPECT_GT(substituted_targets, 0u);
}

TEST(ResilientRepresentatives, TotalDarknessDegradesToEmptyNotCrash) {
  const auto& s = small_scenario();
  auto weather = scenario::stormy_weather();
  weather.target_unresponsive_rate = 1.0;
  const atlas::FaultModel faults(s.world(), weather);
  const RepresentativeFallback f =
      resilient_representatives(s, s.targets()[0], &faults);
  EXPECT_TRUE(f.chosen.empty());
  EXPECT_GT(f.skipped_unresponsive, 0u);
}

TEST(OriginalAlgorithmPings, MatchesFormula) {
  const auto& s = small_scenario();
  EXPECT_EQ(original_algorithm_pings(s),
            static_cast<std::uint64_t>(s.vps().size()) * 3u *
                s.targets().size());
}

}  // namespace
}  // namespace geoloc::core
