// FlatLpm is the serving-path replacement for net::PrefixTable. The key
// property: for every address, it answers exactly what the trie answers —
// checked both on curated nest/overlap cases and on randomized prefix sets.
#include "net/flat_lpm.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "net/prefix_table.h"
#include "util/rng.h"

namespace geoloc::net {
namespace {

using util::Pcg32;

IPv4Address addr(const char* text) { return *IPv4Address::parse(text); }
Prefix pfx(const char* text) { return *Prefix::parse(text); }

TEST(FlatLpm, EmptyTableMissesEverything) {
  const auto lpm = FlatLpm<int>::build({});
  EXPECT_TRUE(lpm.empty());
  EXPECT_EQ(lpm.lookup(addr("1.2.3.4")), nullptr);
  EXPECT_EQ(lpm.lookup(addr("255.255.255.255")), nullptr);
}

TEST(FlatLpm, NestedPrefixesPickTheLongest) {
  const auto lpm = FlatLpm<std::string>::build({
      {pfx("10.0.0.0/8"), "eight"},
      {pfx("10.1.0.0/16"), "sixteen"},
      {pfx("10.1.2.0/24"), "twentyfour"},
  });
  EXPECT_EQ(lpm.lookup(addr("10.1.2.3"))->value, "twentyfour");
  EXPECT_EQ(lpm.lookup(addr("10.1.9.9"))->value, "sixteen");
  EXPECT_EQ(lpm.lookup(addr("10.200.0.1"))->value, "eight");
  EXPECT_EQ(lpm.lookup(addr("11.0.0.1")), nullptr);
  // The covering prefix resumes right after the nested one ends.
  EXPECT_EQ(lpm.lookup(addr("10.1.3.0"))->value, "sixteen");
  EXPECT_EQ(lpm.lookup(addr("10.2.0.0"))->value, "eight");
}

TEST(FlatLpm, MatchReportsTheWinningPrefix) {
  const auto lpm = FlatLpm<int>::build({
      {pfx("192.168.0.0/16"), 1},
      {pfx("192.168.7.0/24"), 2},
  });
  const auto* hit = lpm.lookup(addr("192.168.7.42"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->prefix, pfx("192.168.7.0/24"));
  EXPECT_EQ(hit->value, 2);
}

TEST(FlatLpm, DefaultRouteCatchesAll) {
  const auto lpm = FlatLpm<int>::build({
      {pfx("0.0.0.0/0"), 0},
      {pfx("128.0.0.0/1"), 1},
  });
  EXPECT_EQ(lpm.lookup(addr("1.1.1.1"))->value, 0);
  EXPECT_EQ(lpm.lookup(addr("200.1.1.1"))->value, 1);
  EXPECT_EQ(lpm.lookup(addr("255.255.255.255"))->value, 1);
}

TEST(FlatLpm, AddressSpaceExtremes) {
  const auto lpm = FlatLpm<int>::build({
      {pfx("0.0.0.0/8"), 1},
      {pfx("255.255.255.255/32"), 2},
  });
  EXPECT_EQ(lpm.lookup(addr("0.0.0.1"))->value, 1);
  EXPECT_EQ(lpm.lookup(addr("255.255.255.255"))->value, 2);
  EXPECT_EQ(lpm.lookup(addr("255.255.255.254")), nullptr);
}

TEST(FlatLpm, DuplicatePrefixLastWins) {
  const auto lpm = FlatLpm<int>::build({
      {pfx("10.0.0.0/24"), 1},
      {pfx("10.0.0.0/24"), 2},
  });
  EXPECT_EQ(lpm.size(), 1u);
  EXPECT_EQ(lpm.lookup(addr("10.0.0.5"))->value, 2);
}

TEST(FlatLpm, BatchMatchesSingleLookups) {
  const auto lpm = FlatLpm<int>::build({
      {pfx("10.0.0.0/8"), 1},
      {pfx("10.1.0.0/16"), 2},
      {pfx("172.16.0.0/12"), 3},
  });
  const std::vector<IPv4Address> addrs = {
      addr("10.0.0.1"), addr("10.1.2.3"), addr("172.16.5.5"),
      addr("8.8.8.8"),  addr("10.1.0.0"),
  };
  std::vector<const FlatLpm<int>::Slot*> out(addrs.size());
  lpm.lookup_batch(addrs, out);
  for (std::size_t i = 0; i < addrs.size(); ++i) {
    EXPECT_EQ(out[i], lpm.lookup(addrs[i])) << "index " << i;
  }
}

TEST(FlatLpm, AgreesWithPrefixTableOnRandomSets) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 99ULL}) {
    Pcg32 gen(seed);
    std::vector<std::pair<Prefix, int>> entries;
    PrefixTable<int> trie;
    const std::size_t n = 50 + gen.bounded(400);
    for (std::size_t i = 0; i < n; ++i) {
      const int len = static_cast<int>(gen.bounded(33));  // 0..32 inclusive
      const IPv4Address network{gen() & Prefix::mask(len)};
      const Prefix p{network, len};
      const int value = static_cast<int>(i);
      entries.emplace_back(p, value);
      trie.insert(p, value);
    }
    const auto lpm = FlatLpm<int>::build(entries);
    ASSERT_EQ(lpm.size(), trie.size()) << "seed " << seed;

    for (int probe = 0; probe < 20'000; ++probe) {
      // Half uniform addresses, half near prefix boundaries where the
      // interval sweep is most likely to be wrong.
      IPv4Address a{gen()};
      if (probe % 2 == 1) {
        const auto& p = entries[gen.bounded(
            static_cast<std::uint32_t>(entries.size()))];
        const std::uint64_t size = 1ULL << (32 - p.first.length());
        const std::uint64_t base = p.first.network().value();
        const std::uint64_t edge =
            gen.chance(0.5) ? base : base + size - 1 + gen.bounded(3);
        a = IPv4Address{static_cast<std::uint32_t>(
            std::min<std::uint64_t>(edge, 0xFFFFFFFFULL))};
      }
      const auto want = trie.lookup(a);
      const auto* got = lpm.lookup(a);
      if (!want.has_value()) {
        EXPECT_EQ(got, nullptr) << "seed " << seed << " addr " << a.value();
      } else {
        ASSERT_NE(got, nullptr) << "seed " << seed << " addr " << a.value();
        EXPECT_EQ(got->prefix, want->first)
            << "seed " << seed << " addr " << a.value();
        EXPECT_EQ(got->value, want->second);
      }
    }
  }
}

TEST(FlatLpm, IntervalCountStaysLinear) {
  Pcg32 gen(7);
  std::vector<std::pair<Prefix, int>> entries;
  for (int i = 0; i < 500; ++i) {
    const int len = static_cast<int>(8 + gen.bounded(25));
    entries.emplace_back(
        Prefix{IPv4Address{gen() & Prefix::mask(len)}, len}, i);
  }
  const auto lpm = FlatLpm<int>::build(entries);
  // The sweep emits at most 2n+1 disjoint intervals.
  EXPECT_LE(lpm.interval_count(), 2 * lpm.size() + 1);
}

}  // namespace
}  // namespace geoloc::net
