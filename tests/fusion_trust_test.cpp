// Trust-score dynamics: quarantine onset, consultation gating, probation
// release, and the weather guard (inconclusive outcomes carry no signal).
#include "fusion/trust.h"

#include <gtest/gtest.h>

namespace geoloc::fusion {
namespace {

TrustConfig quick_config() {
  TrustConfig c;
  c.quarantine_rejection_rate = 0.4;
  c.min_observations = 5;
  c.probation_epochs = 2;
  return c;
}

TEST(TrustTracker, UnknownSourcesAreConsulted) {
  const TrustTracker t;
  EXPECT_TRUE(t.consult("never-seen.example"));
  EXPECT_EQ(t.find("never-seen.example"), nullptr);
}

TEST(TrustTracker, AdversarialSourceCrossesThresholdAndIsQuarantined) {
  TrustTracker t(quick_config());
  // Four rejections out of five conclusive tests: rate 0.8 > 0.4.
  t.record("evil.example", ClaimOutcome::Accepted);
  for (int i = 0; i < 3; ++i) {
    t.record("evil.example", ClaimOutcome::Rejected);
    EXPECT_TRUE(t.consult("evil.example")) << "judged before min_observations";
  }
  t.record("evil.example", ClaimOutcome::Rejected);
  EXPECT_FALSE(t.consult("evil.example"));
  ASSERT_NE(t.find("evil.example"), nullptr);
  EXPECT_TRUE(t.find("evil.example")->quarantined);
  EXPECT_EQ(t.find("evil.example")->quarantines, 1u);
}

TEST(TrustTracker, HonestSourceStaysConsultedForever) {
  TrustTracker t(quick_config());
  for (int i = 0; i < 100; ++i) {
    t.record("good.example", ClaimOutcome::Accepted);
    // An occasional rejection (stale entry) keeps the rate well below 0.4.
    if (i % 10 == 0) t.record("good.example", ClaimOutcome::Rejected);
  }
  EXPECT_TRUE(t.consult("good.example"));
}

TEST(TrustTracker, InconclusiveOutcomesCannotQuarantine) {
  TrustTracker t(quick_config());
  // A storm: every verification starved. Rejection rate must stay 0/0.
  for (int i = 0; i < 50; ++i) {
    t.record("unlucky.example", ClaimOutcome::Inconclusive);
  }
  EXPECT_TRUE(t.consult("unlucky.example"));
  EXPECT_EQ(t.find("unlucky.example")->rejection_rate(), 0.0);
}

TEST(TrustTracker, QuarantineLiftsOnlyAfterTheProbationWindow) {
  TrustTracker t(quick_config());
  for (int i = 0; i < 5; ++i) t.record("evil.example", ClaimOutcome::Rejected);
  EXPECT_FALSE(t.consult("evil.example"));

  t.advance_epoch();  // epoch 1 < release epoch 2: still quarantined
  EXPECT_FALSE(t.consult("evil.example"));

  t.advance_epoch();  // epoch 2 = release epoch: released, counters reset
  EXPECT_TRUE(t.consult("evil.example"));
  const SourceTrust* s = t.find("evil.example");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->conclusive(), 0u);
  EXPECT_EQ(s->quarantines, 1u) << "lifetime quarantine count survives reset";
}

TEST(TrustTracker, ReleasedSourceMustReoffendFromScratch) {
  TrustTracker t(quick_config());
  for (int i = 0; i < 5; ++i) t.record("evil.example", ClaimOutcome::Rejected);
  t.advance_epoch();
  t.advance_epoch();
  ASSERT_TRUE(t.consult("evil.example"));

  // Fewer than min_observations new rejections: not yet re-quarantined.
  for (int i = 0; i < 4; ++i) t.record("evil.example", ClaimOutcome::Rejected);
  EXPECT_TRUE(t.consult("evil.example"));
  t.record("evil.example", ClaimOutcome::Rejected);
  EXPECT_FALSE(t.consult("evil.example"));
  EXPECT_EQ(t.find("evil.example")->quarantines, 2u);
}

TEST(TrustTracker, ProbationWindowIsConfigurable) {
  TrustConfig cfg = quick_config();
  cfg.probation_epochs = 4;
  TrustTracker t(cfg);
  for (int i = 0; i < 5; ++i) t.record("evil.example", ClaimOutcome::Rejected);
  for (int e = 0; e < 3; ++e) {
    t.advance_epoch();
    EXPECT_FALSE(t.consult("evil.example")) << "epoch " << t.epoch();
  }
  t.advance_epoch();
  EXPECT_TRUE(t.consult("evil.example"));
}

TEST(TrustTracker, FromEnvUsesDefaultsWhenUnset) {
  const TrustConfig c = TrustConfig::from_env();
  EXPECT_DOUBLE_EQ(c.quarantine_rejection_rate, 0.4);
  EXPECT_EQ(c.min_observations, 5u);
  EXPECT_EQ(c.probation_epochs, 2u);
}

}  // namespace
}  // namespace geoloc::fusion
