#include "landmark/ecosystem.h"

#include <gtest/gtest.h>

#include "geo/geodesy.h"
#include "test_scenario.h"

namespace geoloc::landmark {
namespace {

using geoloc::testing::small_scenario;

const WebEcosystem& eco() { return small_scenario().web(); }

TEST(Ecosystem, GeneratesWebsites) {
  EXPECT_GT(eco().total_count(), 10'000u);
  EXPECT_GT(eco().passing_count(), 100u);
}

TEST(Ecosystem, PassRateIsAFewPercent) {
  // Paper Section 5.2.2: 2.5% of tested websites pass the locally-hosted
  // tests; our ecosystem is calibrated to the same order.
  const double rate = static_cast<double>(eco().passing_count()) /
                      static_cast<double>(eco().total_count());
  EXPECT_GT(rate, 0.01);
  EXPECT_LT(rate, 0.10);
}

TEST(Ecosystem, PassingImpliesAllThreeTestsPass) {
  const auto& s = small_scenario();
  const auto& mapping = s.mapping();
  for (const Website& w : eco().websites()) {
    const bool zip_ok = w.recorded_zip == mapping.zone_of(w.poi_location);
    const bool expected = zip_ok && !w.chain && !w.detected_nonlocal;
    EXPECT_EQ(w.passes_tests, expected) << "website " << w.id;
  }
}

TEST(Ecosystem, PassingSitesHaveServers) {
  for (const Website& w : eco().websites()) {
    if (w.passes_tests) {
      ASSERT_NE(w.server, sim::kInvalidHost);
      EXPECT_EQ(small_scenario().world().host(w.server).kind,
                sim::HostKind::WebServer);
    } else {
      EXPECT_EQ(w.server, sim::kInvalidHost);
    }
  }
}

TEST(Ecosystem, LocalServersSitAtThePoi) {
  const auto& world = small_scenario().world();
  for (const Website& w : eco().websites()) {
    if (!w.passes_tests || w.hosting != HostingType::Local) continue;
    EXPECT_LT(geo::distance_km(world.host(w.server).true_location,
                               w.poi_location),
              0.001);
  }
}

TEST(Ecosystem, FalseLandmarksServeFromFarAway) {
  // CDN/remote sites that slipped through the tests must generally serve
  // from far away — they are the poison in the tier-3 mapping.
  const auto& world = small_scenario().world();
  int false_landmarks = 0, far_served = 0;
  for (const Website& w : eco().websites()) {
    if (!w.passes_tests || w.hosting == HostingType::Local) continue;
    ++false_landmarks;
    if (geo::distance_km(world.host(w.server).true_location, w.poi_location) >
        50.0) {
      ++far_served;
    }
  }
  ASSERT_GT(false_landmarks, 0);
  EXPECT_GT(static_cast<double>(far_served) / false_landmarks, 0.5);
}

TEST(Ecosystem, HostingMixMatchesConfig) {
  const auto& cfg = small_scenario().config().web;
  std::size_t local = 0, cdn = 0, remote = 0;
  for (const Website& w : eco().websites()) {
    switch (w.hosting) {
      case HostingType::Local: ++local; break;
      case HostingType::Cdn: ++cdn; break;
      case HostingType::RemoteDatacenter: ++remote; break;
    }
  }
  const double n = static_cast<double>(eco().total_count());
  EXPECT_NEAR(local / n, cfg.local_share, 0.02);
  EXPECT_NEAR(cdn / n, cfg.cdn_share, 0.02);
  EXPECT_NEAR(remote / n, 1.0 - cfg.local_share - cfg.cdn_share, 0.02);
}

TEST(Ecosystem, WebsitesInZipIndexIsConsistent) {
  int checked = 0;
  for (const Website& w : eco().websites()) {
    const auto in_zip = eco().websites_in_zip(w.recorded_zip);
    EXPECT_NE(std::find(in_zip.begin(), in_zip.end(), w.id), in_zip.end());
    if (++checked > 500) break;
  }
  EXPECT_TRUE(eco().websites_in_zip("Z99999x99999").empty());
}

TEST(Ecosystem, PassingNearFindsOnlyPassingWithinRadius) {
  const auto& world = small_scenario().world();
  const geo::GeoPoint paris = [&] {
    for (const auto& p : world.places()) {
      if (p.name == "Paris") return p.location;
    }
    return geo::GeoPoint{};
  }();
  for (WebsiteId id : eco().passing_near(paris, 30.0)) {
    EXPECT_TRUE(eco().website(id).passes_tests);
    EXPECT_LE(geo::distance_km(eco().website(id).poi_location, paris), 30.0);
  }
}

TEST(Ecosystem, PassingNearRadiusMonotone) {
  const auto& world = small_scenario().world();
  const geo::GeoPoint p = world.places()[0].location;
  EXPECT_LE(eco().passing_near(p, 10.0).size(),
            eco().passing_near(p, 50.0).size());
}

TEST(Ecosystem, HostingTypeNames) {
  EXPECT_EQ(to_string(HostingType::Local), "local");
  EXPECT_EQ(to_string(HostingType::Cdn), "cdn");
  EXPECT_EQ(to_string(HostingType::RemoteDatacenter), "remote");
}

}  // namespace
}  // namespace geoloc::landmark
