// Trace spans: disabled spans record nothing, enabled spans aggregate by
// name in deterministic (sorted) order, and multi-threaded recordings
// merge into a single per-name summary. Also covers obs::warn_once.
//
// Tests here toggle the process-wide trace switch; each one restores
// set_trace_enabled(false) before finishing so ordering never matters.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/parallel.h"

namespace geoloc::obs {
namespace {

/// Drop any spans recorded by earlier tests or library code in this binary.
void drain_spans() { (void)flush_spans(); }

TEST(ObsTrace, DisabledSpansRecordNothing) {
  set_trace_enabled(false);
  drain_spans();
  {
    const TraceSpan outer("obstest.disabled");
    const TraceSpan inner("obstest.disabled.inner");
  }
  EXPECT_TRUE(flush_spans().empty());
}

TEST(ObsTrace, EnabledSpansAggregateByNameSorted) {
  set_trace_enabled(true);
  drain_spans();
  for (int i = 0; i < 3; ++i) {
    const TraceSpan span("obstest.zz");
  }
  { const TraceSpan span("obstest.aa"); }
  set_trace_enabled(false);

  const std::vector<SpanSummary> spans = flush_spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "obstest.aa");
  EXPECT_EQ(spans[0].count, 1u);
  EXPECT_EQ(spans[1].name, "obstest.zz");
  EXPECT_EQ(spans[1].count, 3u);
  EXPECT_GE(spans[1].total_ms, spans[1].max_ms);
  EXPECT_GE(spans[1].max_ms, 0.0);
  // Flushing clears: a second flush sees nothing.
  EXPECT_TRUE(flush_spans().empty());
}

TEST(ObsTrace, SpansFromWorkerThreadsMergeIntoOneSummary) {
  set_trace_enabled(true);
  drain_spans();
  util::set_thread_count(8);
  util::parallel_for(
      200, [](std::size_t) { const TraceSpan span("obstest.worker"); },
      /*grain=*/1);
  util::set_thread_count(0);
  set_trace_enabled(false);

  const std::vector<SpanSummary> spans = flush_spans();
  const auto it = std::find_if(
      spans.begin(), spans.end(),
      [](const SpanSummary& s) { return s.name == "obstest.worker"; });
  ASSERT_NE(it, spans.end());
  EXPECT_EQ(it->count, 200u);
}

TEST(ObsTrace, JsonLinesRendering) {
  set_trace_enabled(true);
  drain_spans();
  { const TraceSpan span("obstest.json"); }
  set_trace_enabled(false);

  const std::string dump = spans_to_json_lines("trace-test");
  EXPECT_NE(dump.find("\"type\":\"span\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"obstest.json\""), std::string::npos);
  EXPECT_NE(dump.find("\"count\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"bench\":\"trace-test\""), std::string::npos);
}

TEST(ObsLog, WarnOnceFiresOncePerKeyAndCounts) {
  auto& warnings = Registry::instance().counter("obs.warnings");
  const std::uint64_t before = warnings.value();
  EXPECT_TRUE(warn_once("obstest-warn-key", "first occurrence prints"));
  EXPECT_FALSE(warn_once("obstest-warn-key", "second occurrence is dropped"));
  EXPECT_FALSE(warn_once("obstest-warn-key", "so is the third"));
  EXPECT_EQ(warnings.value(), before + 1);
  // A different key is its own one-shot.
  EXPECT_TRUE(warn_once("obstest-warn-key-2", "different key prints"));
  EXPECT_EQ(warnings.value(), before + 2);
}

}  // namespace
}  // namespace geoloc::obs
