// The corruption matrix applied to every real artifact format: RTT-matrix
// caches, street-campaign caches, published snapshots, campaign
// checkpoints, CSV exports, metrics flushes. For each: a truncated,
// bit-flipped or torn file must load as a clean failure, be quarantined to
// `<path>.corrupt`, and regenerate transparently on the next save — the
// end-to-end property the durability layer exists for.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>
#include <fstream>
#include <string>
#include <vector>

#include "atlas/checkpoint.h"
#include "eval/street_campaign.h"
#include "obs/metrics.h"
#include "publish/snapshot.h"
#include "scenario/presets.h"
#include "scenario/rtt_matrix.h"
#include "serve/geo_service.h"
#include "util/csv.h"
#include "util/durable.h"

namespace geoloc {
namespace {

namespace fs = std::filesystem;
namespace durable = util::durable;

class ArtifactCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("geoloc-artifact-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::vector<std::byte> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> bytes(raw.size());
  std::memcpy(bytes.data(), raw.data(), raw.size());
  return bytes;
}

void write_all(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

/// The three corruption families, parameterised by position.
enum class Damage { Truncate, FlipBit, TornTail };

void corrupt(const std::string& path, Damage damage, int eighth) {
  auto bytes = read_all(path);
  ASSERT_FALSE(bytes.empty());
  const std::size_t pos =
      std::min(bytes.size() - 1,
               bytes.size() * static_cast<std::size_t>(eighth) / 8);
  switch (damage) {
    case Damage::Truncate:
      bytes.resize(pos);
      break;
    case Damage::FlipBit:
      bytes[pos] ^= std::byte{0x20};
      break;
    case Damage::TornTail:
      // Old-file remnant past the seam: overwrite the tail with a stale
      // pattern a crashed non-atomic writer could have left behind.
      for (std::size_t i = pos; i < bytes.size(); ++i) {
        bytes[i] = static_cast<std::byte>(0x5A);
      }
      break;
  }
  write_all(path, bytes);
}

constexpr Damage kAllDamage[] = {Damage::Truncate, Damage::FlipBit,
                                 Damage::TornTail};
constexpr int kProbeEighths[] = {0, 1, 4, 7};

// -- RTT-matrix cache -------------------------------------------------------

scenario::RttMatrix test_matrix() {
  scenario::RttMatrix m(13, 7);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      m.set(r, c, static_cast<float>(r * 100 + c) * 0.5F);
    }
  }
  m.set(3, 3, std::numeric_limits<float>::quiet_NaN());  // a missing cell
  return m;
}

TEST_F(ArtifactCorruptionTest, RttMatrixSurvivesTheFullDamageMatrix) {
  const scenario::RttMatrix original = test_matrix();
  for (const Damage damage : kAllDamage) {
    for (const int eighth : kProbeEighths) {
      const std::string p = path("m-" + std::to_string(static_cast<int>(damage)) +
                                 "-" + std::to_string(eighth) + ".bin");
      ASSERT_TRUE(original.save(p, /*tag=*/42));
      corrupt(p, damage, eighth);

      scenario::RttMatrix loaded;
      EXPECT_FALSE(loaded.load(p, 42));
      EXPECT_FALSE(fs::exists(p)) << "corrupt cache must be quarantined";
      EXPECT_TRUE(fs::exists(durable::quarantine_path_for(p)));

      // Regeneration: the writer's normal save path lands cleanly.
      ASSERT_TRUE(original.save(p, 42));
      ASSERT_TRUE(loaded.load(p, 42));
      ASSERT_EQ(loaded.rows(), original.rows());
      ASSERT_EQ(loaded.cols(), original.cols());
      for (std::size_t r = 0; r < loaded.rows(); ++r) {
        for (std::size_t c = 0; c < loaded.cols(); ++c) {
          const float a = loaded.at(r, c);
          const float b = original.at(r, c);
          EXPECT_TRUE(std::memcmp(&a, &b, sizeof a) == 0);  // NaN-exact
        }
      }
    }
  }
}

TEST_F(ArtifactCorruptionTest, RttMatrixStaleTagIsAMissNotCorruption) {
  const std::string p = path("m.bin");
  ASSERT_TRUE(test_matrix().save(p, /*tag=*/1));
  scenario::RttMatrix loaded;
  EXPECT_FALSE(loaded.load(p, /*tag=*/2));
  EXPECT_TRUE(fs::exists(p)) << "a stale cache must not be quarantined";
  EXPECT_FALSE(fs::exists(durable::quarantine_path_for(p)));
  EXPECT_TRUE(loaded.load(p, 1));  // still perfectly readable under its tag
}

TEST_F(ArtifactCorruptionTest, RttMatrixRejectsAbsurdDimensionsWithoutAllocating) {
  // A validly framed file whose payload claims 2^32 x 2^32 cells: the
  // bounds check must reject it before any sizing arithmetic overflows or
  // a huge allocation is attempted. Magic/version mirror rtt_matrix.cpp.
  constexpr std::uint64_t kMatrixMagic = 0x47454F4C4F434D32ULL;
  const std::string p = path("huge.bin");
  durable::PayloadWriter w;
  w.pod(std::uint64_t{42});                    // tag
  w.pod(std::uint64_t{1} << 32);               // rows
  w.pod(std::uint64_t{1} << 32);               // cols (rows*cols overflows)
  ASSERT_TRUE(durable::write_framed(p, kMatrixMagic, 2, w.data()));

  scenario::RttMatrix loaded;
  EXPECT_FALSE(loaded.load(p, 42));

  // And a claimed size merely larger than the actual payload.
  durable::PayloadWriter w2;
  w2.pod(std::uint64_t{42});
  w2.pod(std::uint64_t{1000});
  w2.pod(std::uint64_t{1000});  // claims 4 MB of floats, provides none
  ASSERT_TRUE(durable::write_framed(p, kMatrixMagic, 2, w2.data()));
  EXPECT_FALSE(loaded.load(p, 42));
}

TEST_F(ArtifactCorruptionTest, ScenarioRegeneratesACorruptedCacheTransparently) {
  // End-to-end through the scenario layer: materialise the target-RTT
  // cache, corrupt it on disk, and prove a fresh scenario regenerates a
  // bit-identical matrix instead of crashing or reading garbage.
  auto cfg = scenario::small_config();
  cfg.cache_dir = (dir_ / "cache").string();

  std::string cache_file;
  std::vector<float> first;
  {
    const scenario::Scenario s(cfg);
    const scenario::RttMatrix& m = s.target_rtts();
    first.reserve(m.rows() * m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) first.push_back(m.at(r, c));
    }
    for (const auto& entry : fs::directory_iterator(cfg.cache_dir)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("target-rtts-", 0) == 0) cache_file = entry.path().string();
    }
  }
  ASSERT_FALSE(cache_file.empty()) << "scenario must have written its cache";
  corrupt(cache_file, Damage::FlipBit, 4);

  const scenario::Scenario regen(cfg);
  const scenario::RttMatrix& m = regen.target_rtts();
  ASSERT_EQ(first.size(), m.rows() * m.cols());
  std::size_t i = 0, mismatches = 0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c, ++i) {
      const float got = m.at(r, c);
      if (std::memcmp(&got, &first[i], sizeof got) != 0) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_TRUE(fs::exists(durable::quarantine_path_for(cache_file)));
  // And the regenerated cache is clean: a third scenario loads it.
  const scenario::Scenario cached(cfg);
  EXPECT_EQ(cached.target_rtts().rows(), m.rows());
}

// -- street-campaign cache --------------------------------------------------

eval::StreetCampaign test_campaign() {
  eval::StreetCampaign c;
  for (int i = 0; i < 5; ++i) {
    eval::StreetRecord r;
    r.street_error_km = 1.5F * static_cast<float>(i);
    r.cbg_error_km = 100.0F + static_cast<float>(i);
    r.oracle_error_km = i == 0 ? -1.0F : 0.25F;
    r.elapsed_seconds = 3600.0F;
    r.negative_fraction = 0.125F;
    r.pearson = 0.9F;
    r.tier_reached = static_cast<std::uint8_t>(i % 4);
    r.fell_back_to_cbg = (i % 2) == 0;
    r.landmarks_measured = 40u + static_cast<std::uint32_t>(i);
    r.geocode_queries = 7;
    r.websites_tested = 123;
    r.nearest_landmark_km = 2.0F;
    r.nearest_checked_landmark_km = -1.0F;
    for (int d = 0; d < i; ++d) {
      r.distances.emplace_back(static_cast<float>(d), static_cast<float>(d) * 2);
    }
    c.records.push_back(std::move(r));
  }
  return c;
}

TEST_F(ArtifactCorruptionTest, StreetCampaignSurvivesTheFullDamageMatrix) {
  const eval::StreetCampaign original = test_campaign();
  for (const Damage damage : kAllDamage) {
    for (const int eighth : kProbeEighths) {
      const std::string p = path("s-" + std::to_string(static_cast<int>(damage)) +
                                 "-" + std::to_string(eighth) + ".bin");
      ASSERT_TRUE(original.save(p, /*tag=*/99));
      corrupt(p, damage, eighth);

      eval::StreetCampaign loaded;
      EXPECT_FALSE(loaded.load(p, 99));
      EXPECT_FALSE(fs::exists(p));
      EXPECT_TRUE(fs::exists(durable::quarantine_path_for(p)));

      ASSERT_TRUE(original.save(p, 99));
      ASSERT_TRUE(loaded.load(p, 99));
      ASSERT_EQ(loaded.records.size(), original.records.size());
      for (std::size_t i = 0; i < loaded.records.size(); ++i) {
        EXPECT_EQ(loaded.records[i].street_error_km,
                  original.records[i].street_error_km);
        EXPECT_EQ(loaded.records[i].distances, original.records[i].distances);
        EXPECT_EQ(loaded.records[i].tier_reached,
                  original.records[i].tier_reached);
      }
    }
  }
}

TEST_F(ArtifactCorruptionTest, StreetCampaignRejectsOverclaimedRecordCounts) {
  constexpr std::uint64_t kStreetMagic = 0x5354524545543033ULL;
  const std::string p = path("overclaim.bin");
  durable::PayloadWriter w;
  w.pod(std::uint64_t{99});        // tag
  w.pod(std::uint64_t{1} << 40);   // a trillion records, zero bytes behind it
  ASSERT_TRUE(durable::write_framed(p, kStreetMagic, 3, w.data()));

  eval::StreetCampaign loaded;
  EXPECT_FALSE(loaded.load(p, 99));
}

// -- campaign checkpoints ---------------------------------------------------

atlas::CampaignCheckpoint test_checkpoint() {
  atlas::CampaignCheckpoint c;
  c.fingerprint = 0xFEEDFACECAFEBEEFULL;
  c.now_s = 1234.5;
  c.submission_counter = 17;
  c.spare_cursor = 3;
  c.usage.pings = 40;
  c.usage.ping_packets = 120;
  c.usage.traceroutes = 2;
  c.usage.credits = 999;
  c.report.requested = 50;
  c.report.completed = 30;
  c.report.rounds = 4;
  c.report.results.push_back(
      atlas::PingMeasurement{.vp = 1, .target = 2, .min_rtt_ms = 12.5,
                             .packets_sent = 3, .packets_received = 3});
  c.queue.push_back({{5, 6, atlas::MeasurementKind::Ping, 3}, 1, 2000.0});
  return c;
}

TEST_F(ArtifactCorruptionTest, CheckpointSurvivesTheFullDamageMatrix) {
  const atlas::CampaignCheckpoint original = test_checkpoint();
  for (const Damage damage : kAllDamage) {
    for (const int eighth : kProbeEighths) {
      const std::string p = path("c-" + std::to_string(static_cast<int>(damage)) +
                                 "-" + std::to_string(eighth) + ".ckpt");
      ASSERT_TRUE(atlas::save_checkpoint(p, original));
      corrupt(p, damage, eighth);

      atlas::CampaignCheckpoint loaded;
      EXPECT_FALSE(atlas::load_checkpoint(p, original.fingerprint, &loaded));
      EXPECT_FALSE(fs::exists(p));
      EXPECT_TRUE(fs::exists(durable::quarantine_path_for(p)));

      ASSERT_TRUE(atlas::save_checkpoint(p, original));
      ASSERT_TRUE(atlas::load_checkpoint(p, original.fingerprint, &loaded));
      EXPECT_EQ(atlas::encode_report(loaded.report),
                atlas::encode_report(original.report));
      ASSERT_EQ(loaded.queue.size(), 1u);
      EXPECT_EQ(loaded.queue[0].req.vp, 5u);
      EXPECT_EQ(loaded.usage.credits, 999u);
    }
  }
}

TEST_F(ArtifactCorruptionTest, ForeignFingerprintCheckpointIsIgnoredNotQuarantined) {
  const std::string p = path("foreign.ckpt");
  ASSERT_TRUE(atlas::save_checkpoint(p, test_checkpoint()));
  atlas::CampaignCheckpoint loaded;
  EXPECT_FALSE(atlas::load_checkpoint(p, /*fingerprint=*/1, &loaded));
  EXPECT_TRUE(fs::exists(p)) << "a foreign campaign's checkpoint is not ours to destroy";
}

// -- published snapshots ----------------------------------------------------

std::vector<publish::Record> snapshot_records() {
  std::vector<publish::Record> records;
  publish::Record a;
  a.prefix = net::Prefix{net::IPv4Address{0x0A000000}, 8};  // 10.0.0.0/8
  a.location = {48.85, 2.35};
  a.confidence_radius_km = 20.0F;
  a.provenance = "cbg/all-vps";
  records.push_back(a);
  publish::Record b;
  b.prefix = net::Prefix{net::IPv4Address{0xC0A80000}, 16};  // 192.168.0.0/16
  b.location = {40.71, -74.0};
  b.provenance = "street-level:tier=3";
  records.push_back(b);
  return records;
}

TEST_F(ArtifactCorruptionTest, SnapshotLoadQuarantinesEveryDamageVariant) {
  publish::SnapshotBuilder builder;
  for (const auto& r : snapshot_records()) builder.add(r);
  const publish::SnapshotMeta meta{.dataset_version = 3,
                                   .created_at_s = 1.0,
                                   .source = "durability-test"};
  for (const Damage damage : kAllDamage) {
    for (const int eighth : kProbeEighths) {
      const std::string p = path("snap-" +
                                 std::to_string(static_cast<int>(damage)) +
                                 "-" + std::to_string(eighth) + ".geosnap");
      ASSERT_TRUE(builder.write_file(p, meta));
      corrupt(p, damage, eighth);

      std::string error;
      EXPECT_EQ(publish::Snapshot::load(p, &error), nullptr);
      EXPECT_FALSE(fs::exists(p)) << "corrupt snapshot must be quarantined";
      EXPECT_TRUE(fs::exists(durable::quarantine_path_for(p)));

      ASSERT_TRUE(builder.write_file(p, meta));
      const auto reloaded = publish::Snapshot::load(p, &error);
      ASSERT_NE(reloaded, nullptr) << error;
      EXPECT_EQ(reloaded->size(), 2u);
    }
  }
}

TEST_F(ArtifactCorruptionTest, SnapshotQuarantineCanBeDeclined) {
  publish::SnapshotBuilder builder;
  for (const auto& r : snapshot_records()) builder.add(r);
  const std::string p = path("keep.geosnap");
  ASSERT_TRUE(builder.write_file(p, {}));
  corrupt(p, Damage::FlipBit, 4);
  EXPECT_EQ(publish::Snapshot::load(p, nullptr, /*quarantine_corrupt=*/false),
            nullptr);
  EXPECT_TRUE(fs::exists(p));
  EXPECT_FALSE(fs::exists(durable::quarantine_path_for(p)));
}

// -- the serving layer on top of snapshot durability ------------------------

TEST_F(ArtifactCorruptionTest, GeoServicePublishFromFileKeepsServingOnCorruptFile) {
  publish::SnapshotBuilder builder;
  for (const auto& r : snapshot_records()) builder.add(r);
  const publish::SnapshotMeta meta{.dataset_version = 5,
                                   .created_at_s = 1.0,
                                   .source = "serve-durability"};
  const std::string p = path("served.geosnap");
  ASSERT_TRUE(builder.write_file(p, meta));

  serve::GeoService service;
  std::string error;
  ASSERT_TRUE(service.publish_from_file(p, &error)) << error;
  const serve::Answer before =
      service.lookup(net::IPv4Address{0x0A010203}, /*now_s=*/2.0);
  EXPECT_TRUE(before.found);
  EXPECT_EQ(before.dataset_version, 5u);

  // The next version's file arrives torn: the publish must fail cleanly,
  // quarantine the bad file, and keep serving the previous version.
  corrupt(p, Damage::Truncate, 4);
  EXPECT_FALSE(service.publish_from_file(p, &error));
  EXPECT_TRUE(fs::exists(durable::quarantine_path_for(p)));
  const serve::Answer after =
      service.lookup(net::IPv4Address{0x0A010203}, /*now_s=*/2.0);
  EXPECT_TRUE(after.found);
  EXPECT_EQ(after.dataset_version, 5u);
  EXPECT_EQ(service.stats().swaps, 1u);  // the failed publish swapped nothing
}

// -- CSV exports ------------------------------------------------------------

TEST_F(ArtifactCorruptionTest, CsvAppearsAtomicallyOnCloseWithNoStagingRemnant) {
  const std::string p = path("figure.csv");
  {
    util::CsvWriter w(p);
    ASSERT_TRUE(w.ok());
    w.row({"x", "y"});
    w.numeric_row({1.0, 2.5});
    // Not yet promoted: the destination must not exist while rows stream.
    EXPECT_FALSE(fs::exists(p));
    EXPECT_TRUE(w.close());
    EXPECT_EQ(w.rows_written(), 2u);
  }
  ASSERT_TRUE(fs::exists(p));
  EXPECT_FALSE(fs::exists(durable::tmp_path_for(p)));
  std::ifstream in(p);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "x,y");
}

TEST_F(ArtifactCorruptionTest, CsvDestructorPromotesWritersDroppedAtScopeEnd) {
  const std::string p = path("scoped.csv");
  {
    util::CsvWriter w(p);
    w.row({"a"});
  }
  EXPECT_TRUE(fs::exists(p));
}

TEST_F(ArtifactCorruptionTest, CsvFailedOpenReportsNotOkAndNeverCreatesThePath) {
  const std::string p = (dir_ / "no-such-dir" / "f.csv").string();
  util::CsvWriter w(p);
  EXPECT_FALSE(w.ok());
  w.row({"dropped"});
  EXPECT_FALSE(w.close());
  EXPECT_FALSE(fs::exists(p));
}

TEST_F(ArtifactCorruptionTest, CsvFailureLeavesThePreviousExportIntact) {
  const std::string p = path("keep-old.csv");
  {
    util::CsvWriter w(p);
    w.row({"v1"});
    ASSERT_TRUE(w.close());
  }
  {
    // A writer that never manages a single row (simulated by closing after
    // the stream was broken): close() must fail without touching `p`.
    util::CsvWriter w(p);
    ASSERT_TRUE(w.ok());
    // Break the staging stream out from under the writer.
    fs::remove_all(dir_);
    for (int i = 0; i < 2048; ++i) w.numeric_row({1.0});
    fs::create_directories(dir_);
    {
      std::ofstream restore(p);
      restore << "v1\n";
    }
    const bool closed = w.close();
    if (!closed) {
      // The failed export must not have replaced the destination.
      std::ifstream in(p);
      std::string line;
      ASSERT_TRUE(std::getline(in, line));
      EXPECT_EQ(line, "v1");
    }
  }
}

// -- metrics flush ----------------------------------------------------------

TEST_F(ArtifactCorruptionTest, MetricsFlushToUnopenablePathReportsFailure) {
  obs::Registry::instance().counter("durable.test.probe").add();
  EXPECT_FALSE(obs::flush_metrics_json(
      "durable-test", (dir_ / "no-such-dir" / "m.jsonl").string()));
}

TEST_F(ArtifactCorruptionTest, MetricsFlushShortWriteIsDetectedOnFullDevice) {
  if (!fs::exists("/dev/full")) GTEST_SKIP() << "/dev/full unavailable";
  obs::Registry::instance().counter("durable.test.probe").add();
  // /dev/full accepts the open and fails every write with ENOSPC — the
  // short-write detection must turn that into `false`, not silence.
  EXPECT_FALSE(obs::flush_metrics_json("durable-test", "/dev/full"));
}

}  // namespace
}  // namespace geoloc
