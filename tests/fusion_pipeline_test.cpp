// End-to-end fused campaigns: the zero-evidence equivalence guard (byte
// identity with the latency-only path at 1 and 8 worker threads), honest
// evidence improving published accuracy, adversarial evidence being
// rejected, mid-campaign quarantine with probation recovery, and the
// weather downgrade rule.
#include "fusion/pipeline.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "atlas/checkpoint.h"
#include "geo/geodesy.h"
#include "scenario/presets.h"
#include "test_scenario.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace geoloc::fusion {
namespace {

PipelineOptions quick_options() {
  PipelineOptions o;
  o.max_vps = 200;  // keep the mesh small; spares cover reassignment
  return o;
}

/// Run fn with the pool sized to `threads`, restoring the default after.
template <typename Fn>
auto at_threads(unsigned threads, Fn&& fn) {
  util::set_thread_count(threads);
  auto result = fn();
  util::set_thread_count(0);
  return result;
}

std::vector<std::byte> snapshot_bytes(const std::vector<publish::Record>& r) {
  publish::SnapshotBuilder b;
  b.add(r);
  publish::SnapshotMeta meta;
  meta.created_at_s = 0.0;
  meta.source = "fusion-test";
  return b.build(meta);
}

double median_error_km(const scenario::Scenario& s,
                       const std::vector<publish::Record>& records) {
  std::vector<double> errors;
  for (std::size_t col = 0; col < records.size(); ++col) {
    errors.push_back(geo::distance_km(
        records[col].location,
        s.world().host(s.targets()[col]).true_location));
  }
  return util::median(errors);
}

TEST(FusedPipeline, ZeroEvidenceIsByteIdenticalToLatencyOnly) {
  const auto& s = geoloc::testing::small_scenario();
  const PipelineOptions opts = quick_options();

  for (const unsigned threads : {1u, 8u}) {
    const LatencyCampaign latency =
        at_threads(threads, [&] { return run_latency_campaign(s, opts); });
    const FusedCampaignResult fused = at_threads(
        threads, [&] { return run_fused_campaign(s, EvidenceBundle{}, opts); });

    // The base campaign never noticed the fusion machinery existed.
    EXPECT_EQ(atlas::encode_report(latency.report),
              atlas::encode_report(fused.base_report))
        << "threads=" << threads;
    // And the published artifact is the same bytes.
    EXPECT_EQ(snapshot_bytes(latency.records), snapshot_bytes(fused.records))
        << "threads=" << threads;

    EXPECT_EQ(fused.claims, 0u);
    EXPECT_EQ(fused.verify_pings, 0u);
    for (const FusionDecision& d : fused.decisions) {
      EXPECT_FALSE(d.has_claim);
    }
  }

  // Thread-count invariance of the fused path itself.
  const auto r1 = at_threads(1, [&] {
    return snapshot_bytes(run_fused_campaign(s, EvidenceBundle{}, opts).records);
  });
  const auto r8 = at_threads(8, [&] {
    return snapshot_bytes(run_fused_campaign(s, EvidenceBundle{}, opts).records);
  });
  EXPECT_EQ(r1, r8);
}

TEST(FusedPipeline, HonestEvidenceIsVerifiedAndImprovesAccuracy) {
  const auto& s = geoloc::testing::small_scenario();
  const PipelineOptions opts = quick_options();

  sim::HintConfig hint_cfg;
  hint_cfg.coverage = 1.0;
  hint_cfg.lie_rate = 0.0;
  hint_cfg.noise_km = 10.0;
  EvidenceBundle evidence;
  evidence.hints = sim::generate_hints(s.world(), s.targets(), hint_cfg,
                                       util::RngStream(555));

  const LatencyCampaign latency = run_latency_campaign(s, opts);
  const FusedCampaignResult fused = run_fused_campaign(s, evidence, opts);

  EXPECT_EQ(fused.claims, s.targets().size());
  // Honest city-level hints overwhelmingly survive both stages.
  EXPECT_GT(fused.accepted, s.targets().size() / 2);
  EXPECT_GT(fused.verify_pings, 0u);

  const double base_err = median_error_km(s, latency.records);
  const double fused_err = median_error_km(s, fused.records);
  EXPECT_LT(fused_err, base_err / 2.0)
      << "fused=" << fused_err << " base=" << base_err;

  // Accepted targets publish as Method::Fused with the audit trail.
  for (std::size_t col = 0; col < fused.decisions.size(); ++col) {
    const auto& d = fused.decisions[col];
    const auto& r = fused.records[col];
    if (d.verdict == ClaimVerdict::Accepted && d.has_claim) {
      EXPECT_EQ(r.method, publish::Method::Fused);
      EXPECT_EQ(r.tier, core::CbgVerdict::Ok);
      EXPECT_NE(r.provenance.find("fused/hint:rdns"), std::string::npos);
      EXPECT_NE(r.provenance.find("cbg/campaign"), std::string::npos);
    } else {
      EXPECT_EQ(r.method, publish::Method::Cbg);
    }
  }

  // The snapshot layer round-trips the new method byte.
  const auto bytes = snapshot_bytes(fused.records);
  std::string error;
  const auto snap = publish::Snapshot::from_bytes(bytes, &error);
  ASSERT_NE(snap, nullptr) << error;
  std::size_t fused_entries = 0;
  for (std::size_t i = 0; i < snap->size(); ++i) {
    if (snap->entry(i).method == publish::Method::Fused) ++fused_entries;
  }
  EXPECT_EQ(fused_entries, fused.accepted);
}

TEST(FusedPipeline, LyingHintsAreRejectedNotPublished) {
  const auto& s = geoloc::testing::small_scenario();
  const PipelineOptions opts = quick_options();

  sim::HintConfig hint_cfg;
  hint_cfg.coverage = 1.0;
  hint_cfg.lie_rate = 1.0;
  hint_cfg.noise_km = 10.0;
  EvidenceBundle evidence;
  evidence.hints = sim::generate_hints(s.world(), s.targets(), hint_cfg,
                                       util::RngStream(556));

  const LatencyCampaign latency = run_latency_campaign(s, opts);
  const FusedCampaignResult fused = run_fused_campaign(s, evidence, opts);

  // The overwhelming majority of lies die in one of the two stages.
  EXPECT_LT(fused.accepted, fused.claims / 4);
  EXPECT_GT(fused.rejected_geometric + fused.rejected_active, 0u);

  // Whatever slipped through was a near-truth lie: fused accuracy is not
  // materially worse than latency-only.
  const double base_err = median_error_km(s, latency.records);
  const double fused_err = median_error_km(s, fused.records);
  EXPECT_LE(fused_err, base_err * 1.25 + 50.0)
      << "fused=" << fused_err << " base=" << base_err;
}

TEST(FusedPipeline, AdversarialFeedIsQuarantinedThenRecoversAfterProbation) {
  const auto& s = geoloc::testing::small_scenario();
  PipelineOptions opts = quick_options();
  opts.trust.min_observations = 5;
  opts.trust.probation_epochs = 2;

  sim::FeedConfig feed_cfg;
  feed_cfg.coverage = 1.0;
  feed_cfg.feed_count = 2;
  feed_cfg.adversarial_feeds = 1;
  feed_cfg.adversarial_lie_rate = 1.0;
  feed_cfg.stale_rate = 0.0;
  feed_cfg.noise_km = 8.0;
  const auto feeds = sim::generate_feeds(s.world(), s.targets(), feed_cfg,
                                         util::RngStream(77));
  const EvidenceBundle evidence = EvidenceBundle::from_generated({}, feeds);

  TrustTracker tracker(opts.trust);
  opts.trust_state = &tracker;

  // Epoch 1: the adversarial feed burns its credibility mid-pass.
  const FusedCampaignResult e1 = run_fused_campaign(s, evidence, opts);
  const SourceTrust* evil = tracker.find("feed-0.example");
  ASSERT_NE(evil, nullptr);
  EXPECT_TRUE(evil->quarantined);
  EXPECT_GT(e1.skipped_quarantined, 0u)
      << "later claims of the quarantined feed must be gated";
  const SourceTrust* good = tracker.find("feed-1.example");
  ASSERT_NE(good, nullptr);
  EXPECT_FALSE(good->quarantined);

  // Epoch 2 (tracker at epoch 1, release at 2): fully gated.
  const FusedCampaignResult e2 = run_fused_campaign(s, evidence, opts);
  EXPECT_FALSE(tracker.consult("feed-0.example") &&
               tracker.epoch() < 2);  // gated during the pass
  EXPECT_EQ(e2.skipped_quarantined, feeds[0].entries.size());

  // Epoch 3: probation over, the feed is consulted again (and promptly
  // re-quarantined — it is still lying).
  const FusedCampaignResult e3 = run_fused_campaign(s, evidence, opts);
  EXPECT_GT(e3.claims, e2.claims);
  EXPECT_GE(tracker.find("feed-0.example")->quarantines, 2u);
}

TEST(FusedPipeline, WeatherDowngradesInconclusiveVerificationsNeverAccepts) {
  const auto& s = geoloc::testing::small_scenario();
  PipelineOptions opts = quick_options();
  opts.weather = scenario::stormy_weather(20231031);

  sim::HintConfig hint_cfg;
  hint_cfg.coverage = 1.0;
  hint_cfg.lie_rate = 0.0;
  hint_cfg.noise_km = 10.0;
  EvidenceBundle evidence;
  evidence.hints = sim::generate_hints(s.world(), s.targets(), hint_cfg,
                                       util::RngStream(557));

  const FusedCampaignResult fused = run_fused_campaign(s, evidence, opts);

  // Under a storm some verifications starve; every one of those must have
  // kept the latency answer, not accepted the claim.
  EXPECT_GT(fused.inconclusive, 0u);
  for (std::size_t col = 0; col < fused.decisions.size(); ++col) {
    const auto& d = fused.decisions[col];
    if (!d.has_claim) continue;
    if (d.verdict == ClaimVerdict::Inconclusive) {
      EXPECT_EQ(fused.records[col].method, publish::Method::Cbg);
      EXPECT_NE(fused.records[col].provenance.find("evidence-inconclusive"),
                std::string::npos);
    }
  }
  // Accounting closes: every evaluated claim got exactly one outcome.
  EXPECT_EQ(fused.claims, fused.accepted + fused.rejected_geometric +
                              fused.rejected_active + fused.inconclusive);
}

}  // namespace
}  // namespace geoloc::fusion
