// Shared scenario fixtures. Building even the small scenario costs ~0.2 s
// and its RTT matrices a couple of seconds, so tests share one instance per
// process (read-only use only).
#pragma once

#include "scenario/presets.h"
#include "scenario/scenario.h"

namespace geoloc::testing {

/// The miniature scenario (~100 anchors / 800 probes), shared by all tests.
inline const scenario::Scenario& small_scenario() {
  static const scenario::Scenario s = [] {
    auto cfg = scenario::small_config();
    cfg.cache_dir = "";  // tests never touch the disk cache
    return scenario::Scenario(cfg);
  }();
  return s;
}

/// A second small scenario with a different seed, for determinism tests.
inline const scenario::Scenario& small_scenario_alt_seed() {
  static const scenario::Scenario s = [] {
    auto cfg = scenario::small_config(/*seed=*/777);
    cfg.cache_dir = "";
    return scenario::Scenario(cfg);
  }();
  return s;
}

}  // namespace geoloc::testing
