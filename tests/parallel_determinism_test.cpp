// Bit-identity of the workloads threaded through the parallel engine
// (DESIGN.md §9): re-running the same computation at GEOLOC_THREADS=1 and
// =8 must produce byte-equal results — RTT matrices, CBG sweep outputs,
// and the resilient executor's CampaignReport.
//
// These tests build their own fresh scenarios (disk cache disabled)
// instead of the shared test_scenario.h instances: lazy matrices and the
// all_vp_errors memo would otherwise carry results computed at whatever
// thread count ran first.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "atlas/executor.h"
#include "eval/experiments.h"
#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "util/parallel.h"

namespace geoloc {
namespace {

scenario::ScenarioConfig fresh_config() {
  auto cfg = scenario::small_config();
  cfg.cache_dir = "";     // never mix results through the disk cache
  cfg.build_web = false;  // the web ecosystem plays no part here
  return cfg;
}

/// Run fn with the pool sized to `threads`, restoring the default after.
template <typename Fn>
auto at_threads(unsigned threads, Fn&& fn) {
  util::set_thread_count(threads);
  auto result = fn();
  util::set_thread_count(0);
  return result;
}

void expect_bit_equal(const scenario::RttMatrix& a,
                      const scenario::RttMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  std::size_t mismatches = 0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      // Bit comparison, not ==: NaN encodes "no response" and must match too.
      if (std::bit_cast<std::uint32_t>(a.at(r, c)) !=
          std::bit_cast<std::uint32_t>(b.at(r, c))) {
        ++mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(ParallelDeterminismTest, RttMatricesAreBitIdenticalAcrossThreadCounts) {
  const auto build = [](unsigned threads) {
    return at_threads(threads, [] {
      auto s = std::make_unique<scenario::Scenario>(fresh_config());
      (void)s->target_rtts();  // materialise under this thread count
      (void)s->representative_rtts();
      return s;
    });
  };
  const auto serial = build(1);
  const auto threaded = build(8);
  expect_bit_equal(serial->target_rtts(), threaded->target_rtts());
  expect_bit_equal(serial->representative_rtts(),
                   threaded->representative_rtts());
}

TEST(ParallelDeterminismTest, CbgSweepsAreThreadCountInvariant) {
  // One scenario, matrices pre-materialised serially: what's under test is
  // the parallel_map over target columns inside the eval sweeps.
  const scenario::Scenario s(fresh_config());
  (void)s.target_rtts();
  (void)s.representative_rtts();

  const int sizes[] = {50, 150};
  const auto subsets_1 = at_threads(
      1, [&] { return eval::run_subset_size_sweep(s, sizes, /*trials=*/3); });
  const auto subsets_8 = at_threads(
      8, [&] { return eval::run_subset_size_sweep(s, sizes, /*trials=*/3); });
  ASSERT_EQ(subsets_1.size(), subsets_8.size());
  for (std::size_t i = 0; i < subsets_1.size(); ++i) {
    EXPECT_EQ(subsets_1[i].subset_size, subsets_8[i].subset_size);
    // Exact equality: medians of identical error lists, not "close".
    EXPECT_EQ(subsets_1[i].trial_median_errors_km,
              subsets_8[i].trial_median_errors_km);
  }

  const int ks[] = {0, 10};
  const auto reps_1 =
      at_threads(1, [&] { return eval::run_rep_selection(s, ks); });
  const auto reps_8 =
      at_threads(8, [&] { return eval::run_rep_selection(s, ks); });
  ASSERT_EQ(reps_1.size(), reps_8.size());
  for (std::size_t i = 0; i < reps_1.size(); ++i) {
    EXPECT_EQ(reps_1[i].k, reps_8[i].k);
    EXPECT_EQ(reps_1[i].errors_km, reps_8[i].errors_km);
  }
}

TEST(ParallelDeterminismTest, PingManyMatchesSerialPingsBitForBit) {
  const scenario::Scenario s(fresh_config());
  std::vector<atlas::PingTask> tasks;
  for (std::size_t t = 0; t < 64 && t < s.targets().size(); ++t) {
    tasks.push_back({s.vps()[t % s.vps().size()], s.targets()[t], 3});
  }

  atlas::Platform serial_platform(s.world(), s.latency());
  std::vector<atlas::PingMeasurement> serial_results;
  for (const atlas::PingTask& task : tasks) {
    serial_results.push_back(
        serial_platform.ping(task.vp, task.target, task.packets));
  }

  const auto batch = at_threads(8, [&] {
    atlas::Platform batch_platform(s.world(), s.latency());
    std::vector<atlas::PingMeasurement> out(tasks.size());
    batch_platform.ping_many(tasks, out);
    EXPECT_EQ(batch_platform.usage().pings, serial_platform.usage().pings);
    EXPECT_EQ(batch_platform.usage().credits,
              serial_platform.usage().credits);
    return out;
  });

  ASSERT_EQ(batch.size(), serial_results.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].vp, serial_results[i].vp);
    EXPECT_EQ(batch[i].target, serial_results[i].target);
    EXPECT_EQ(batch[i].min_rtt_ms, serial_results[i].min_rtt_ms);
    EXPECT_EQ(batch[i].packets_sent, serial_results[i].packets_sent);
    EXPECT_EQ(batch[i].packets_received, serial_results[i].packets_received);
  }
}

TEST(ParallelDeterminismTest, StormyCampaignReportIsThreadCountInvariant) {
  const scenario::Scenario s(fresh_config());
  const std::size_t vp_count = std::min<std::size_t>(s.vps().size(), 60);
  const std::span<const sim::HostId> vps(s.vps().data(), vp_count);
  const std::span<const sim::HostId> spares(s.vps().data() + vp_count,
                                            s.vps().size() - vp_count);

  const auto run = [&](unsigned threads) {
    return at_threads(threads, [&] {
      atlas::Platform platform(s.world(), s.latency());
      const atlas::FaultModel faults(s.world(), scenario::stormy_weather());
      platform.set_fault_model(&faults);
      atlas::CampaignExecutor executor(platform);
      return executor.execute_full_mesh(vps, s.targets(), 3, spares);
    });
  };
  const atlas::CampaignReport a = run(1);
  const atlas::CampaignReport b = run(8);

  EXPECT_EQ(a.requested, b.requested);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_EQ(a.no_replies, b.no_replies);
  EXPECT_EQ(a.outage_deferrals, b.outage_deferrals);
  EXPECT_EQ(a.vp_reassignments, b.vp_reassignments);
  EXPECT_EQ(a.round_failures, b.round_failures);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.credits_spent, b.credits_spent);
  EXPECT_EQ(a.credits_wasted, b.credits_wasted);
  EXPECT_EQ(a.duration_s, b.duration_s);  // exact: same fold order
  EXPECT_EQ(a.backoff_wait_s, b.backoff_wait_s);
  ASSERT_EQ(a.results.size(), b.results.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].vp != b.results[i].vp ||
        a.results[i].target != b.results[i].target ||
        a.results[i].min_rtt_ms != b.results[i].min_rtt_ms ||
        a.results[i].packets_received != b.results[i].packets_received) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

}  // namespace
}  // namespace geoloc
