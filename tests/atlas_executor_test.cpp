#include "atlas/executor.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "scenario/presets.h"
#include "test_scenario.h"

namespace geoloc::atlas {
namespace {

using geoloc::testing::small_scenario;

std::vector<MeasurementRequest> mesh_requests(
    std::span<const sim::HostId> vps, std::span<const sim::HostId> targets,
    int packets = 3) {
  std::vector<MeasurementRequest> requests;
  requests.reserve(vps.size() * targets.size());
  for (sim::HostId vp : vps) {
    for (sim::HostId target : targets) {
      requests.push_back({vp, target, MeasurementKind::Ping, packets});
    }
  }
  return requests;
}

TEST(RetryPolicy, CappedExponentialBackoff) {
  const RetryPolicy policy;  // 60s, x2, capped at 960s
  EXPECT_DOUBLE_EQ(policy.backoff_s(0), 0.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(1), 60.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(2), 120.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(3), 240.0);
  EXPECT_DOUBLE_EQ(policy.backoff_s(5), 960.0);   // 960 exactly at the cap
  EXPECT_DOUBLE_EQ(policy.backoff_s(20), 960.0);  // stays capped
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : scenario_(small_scenario()) {}

  const scenario::Scenario& scenario_;
};

TEST_F(ExecutorTest, CalmCampaignCompletesEverythingFirstTry) {
  Platform platform(scenario_.world(), scenario_.latency());
  CampaignExecutor executor(platform);

  const std::span<const sim::HostId> vps{scenario_.vps().data() + 200, 30};
  const std::span<const sim::HostId> targets{scenario_.targets().data(), 10};
  const auto requests = mesh_requests(vps, targets);
  const CampaignReport report = executor.execute(requests);

  EXPECT_EQ(report.requested, requests.size());
  EXPECT_EQ(report.completed, requests.size());
  EXPECT_EQ(report.abandoned, 0u);
  EXPECT_EQ(report.completed + report.abandoned, report.requested);
  EXPECT_EQ(report.attempts, requests.size());
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.rejections, 0u);
  EXPECT_EQ(report.round_failures, 0u);
  EXPECT_EQ(report.vp_reassignments, 0u);
  EXPECT_EQ(report.credits_wasted, 0u);
  EXPECT_GT(report.credits_spent, 0u);
  EXPECT_GT(report.duration_s, 0.0);
  EXPECT_DOUBLE_EQ(report.success_rate(), 1.0);
  EXPECT_EQ(report.results.size(), requests.size());
}

TEST_F(ExecutorTest, CalmExecutionIsBitIdenticalToDirectPings) {
  // Without weather the executor must degenerate to Platform::ping in
  // request order — same RTTs, same credit bill.
  const std::span<const sim::HostId> vps{scenario_.vps().data() + 100, 10};
  const std::span<const sim::HostId> targets{scenario_.targets().data(), 10};
  const auto requests = mesh_requests(vps, targets);

  Platform executed(scenario_.world(), scenario_.latency());
  const CampaignReport report = CampaignExecutor(executed).execute(requests);

  Platform direct(scenario_.world(), scenario_.latency());
  ASSERT_EQ(report.results.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const PingMeasurement expected =
        direct.ping(requests[i].vp, requests[i].target, requests[i].packets);
    const PingMeasurement& got = report.results[i];
    EXPECT_EQ(got.vp, expected.vp);
    EXPECT_EQ(got.target, expected.target);
    EXPECT_EQ(got.min_rtt_ms, expected.min_rtt_ms);
    EXPECT_EQ(got.packets_received, expected.packets_received);
  }
  EXPECT_EQ(executed.usage().credits, direct.usage().credits);
  EXPECT_EQ(report.credits_spent, direct.usage().credits);
}

TEST_F(ExecutorTest, UnresponsiveTargetExhaustsRetryBudgetNotSilentlyDropped) {
  // All packets lost: every ping comes back empty. The executor must spend
  // the full retry budget, count the waste, and abandon — never pretend the
  // measurement succeeded or drop it from the books.
  sim::LatencyModelConfig lossy_config = scenario_.config().latency;
  lossy_config.loss_rate = 1.0;
  const sim::LatencyModel lossy(scenario_.world(), lossy_config);
  Platform platform(scenario_.world(), lossy);
  CampaignExecutor executor(platform);

  const std::span<const sim::HostId> vps{scenario_.vps().data() + 150, 5};
  const std::span<const sim::HostId> targets{scenario_.targets().data(), 4};
  const auto requests = mesh_requests(vps, targets);
  const CampaignReport report = executor.execute(requests);

  const auto budget =
      static_cast<std::uint64_t>(executor.config().retry.max_attempts);
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.abandoned, requests.size());
  EXPECT_EQ(report.completed + report.abandoned, report.requested);
  EXPECT_EQ(report.attempts, requests.size() * budget);
  EXPECT_EQ(report.retries, requests.size() * (budget - 1));
  EXPECT_EQ(report.no_replies, report.attempts);
  EXPECT_GT(report.credits_wasted, 0u);
  EXPECT_EQ(report.credits_wasted, report.credits_spent);
  // Each retry wave needs its own submission round.
  EXPECT_GE(report.rounds, budget);
  EXPECT_TRUE(report.results.empty());
}

TEST_F(ExecutorTest, WeatherUnresponsiveTargetStillBillsCredits) {
  auto weather = scenario::calm_weather();
  weather.enabled = true;
  weather.target_unresponsive_rate = 1.0;  // every destination dark
  const FaultModel faults(scenario_.world(), weather);

  Platform platform(scenario_.world(), scenario_.latency());
  platform.set_fault_model(&faults);
  CampaignExecutor executor(platform);

  const std::span<const sim::HostId> vps{scenario_.vps().data() + 120, 4};
  const std::span<const sim::HostId> targets{scenario_.targets().data(), 5};
  const CampaignReport report = executor.execute(mesh_requests(vps, targets));

  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.abandoned, report.requested);
  // The echo requests went out: credits are spent even though nothing
  // answered, and all of it is waste.
  EXPECT_GT(report.credits_spent, 0u);
  EXPECT_EQ(report.credits_wasted, report.credits_spent);
  EXPECT_EQ(report.no_replies, report.attempts);
}

TEST_F(ExecutorTest, PermanentRoundFailureAbandonsEverythingWithoutHanging) {
  auto weather = scenario::calm_weather();
  weather.enabled = true;
  weather.round_failure_rate = 1.0;  // the API never works
  const FaultModel faults(scenario_.world(), weather);

  Platform platform(scenario_.world(), scenario_.latency());
  platform.set_fault_model(&faults);
  CampaignExecutor executor(platform);

  const std::span<const sim::HostId> vps{scenario_.vps().data() + 130, 3};
  const std::span<const sim::HostId> targets{scenario_.targets().data(), 3};
  const CampaignReport report = executor.execute(mesh_requests(vps, targets));

  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.abandoned, report.requested);
  EXPECT_EQ(report.round_failures, report.rounds);
  EXPECT_EQ(platform.usage().pings, 0u);  // nothing ever executed
  EXPECT_EQ(report.credits_spent, 0u);
}

TEST_F(ExecutorTest, DeadVpsAreReassignedToSpares) {
  auto weather = scenario::calm_weather();
  weather.enabled = true;
  weather.vp_abandon_per_day = 50'000.0;  // probes die within seconds
  weather.anchor_stability = 0.0;         // spares (anchors) never churn
  const FaultModel faults(scenario_.world(), weather);

  Platform platform(scenario_.world(), scenario_.latency());
  platform.set_fault_model(&faults);
  ExecutorConfig config;
  config.scheduler.batch_size = 5;  // force many rounds so the clock moves
  CampaignExecutor executor(platform, config);

  const std::span<const sim::HostId> probes{
      scenario_.probe_sanitisation().kept.data(), 2};
  const std::span<const sim::HostId> targets{scenario_.targets().data(), 20};
  const std::span<const sim::HostId> spares{scenario_.targets().data() + 20, 5};
  const CampaignReport report =
      executor.execute(mesh_requests(probes, targets), spares);

  EXPECT_GT(report.vp_reassignments, 0u);
  EXPECT_EQ(report.completed + report.abandoned, report.requested);
  // Spares kept the campaign alive: reassigned measurements completed.
  EXPECT_GT(report.completed, 0u);
}

TEST_F(ExecutorTest, DeadVpsWithoutSparesAreAbandoned) {
  auto weather = scenario::calm_weather();
  weather.enabled = true;
  weather.vp_abandon_per_day = 50'000.0;
  const FaultModel faults(scenario_.world(), weather);

  Platform platform(scenario_.world(), scenario_.latency());
  platform.set_fault_model(&faults);
  ExecutorConfig config;
  config.scheduler.batch_size = 5;
  CampaignExecutor executor(platform, config);

  const std::span<const sim::HostId> probes{
      scenario_.probe_sanitisation().kept.data(), 2};
  const std::span<const sim::HostId> targets{scenario_.targets().data(), 20};
  const CampaignReport report = executor.execute(mesh_requests(probes, targets));

  EXPECT_EQ(report.vp_reassignments, 0u);
  EXPECT_GT(report.abandoned, 0u);
  EXPECT_EQ(report.completed + report.abandoned, report.requested);
}

TEST_F(ExecutorTest, StormyCampaignSurvivesAndBalancesTheBooks) {
  // The acceptance campaign: a full stormy mesh completes with zero crashes
  // and every measurement accounted for, retries and abandonments included.
  const FaultModel faults(scenario_.world(), scenario::stormy_weather());
  Platform platform(scenario_.world(), scenario_.latency());
  platform.set_fault_model(&faults);
  CampaignExecutor executor(platform);

  const std::span<const sim::HostId> vps{scenario_.vps().data() + 100, 60};
  const std::span<const sim::HostId> spares{scenario_.vps().data() + 160, 40};
  const CampaignReport report = executor.execute_full_mesh(
      vps, scenario_.targets(), scenario_.config().ping_packets, spares);

  EXPECT_EQ(report.requested, vps.size() * scenario_.targets().size());
  EXPECT_EQ(report.completed + report.abandoned, report.requested);
  EXPECT_GT(report.completed, 0u);
  EXPECT_GT(report.abandoned, 0u);  // ~12% dark targets exceed the budget
  EXPECT_GT(report.retries, 0u);
  EXPECT_GT(report.attempts, report.requested);
  EXPECT_GE(report.attempts, report.retries);
  EXPECT_GT(report.credits_wasted, 0u);
  EXPECT_LT(report.credits_wasted, report.credits_spent);
  EXPECT_GT(report.success_rate(), 0.5);
  EXPECT_LT(report.success_rate(), 1.0);
  EXPECT_EQ(report.results.size(), report.completed);
  EXPECT_GT(report.duration_s, 0.0);
}

TEST_F(ExecutorTest, StormyCampaignIsDeterministic) {
  const std::span<const sim::HostId> vps{scenario_.vps().data() + 100, 20};
  const std::span<const sim::HostId> targets{scenario_.targets().data(), 15};
  const auto requests = mesh_requests(vps, targets);

  auto run = [&] {
    const FaultModel faults(scenario_.world(), scenario::stormy_weather());
    Platform platform(scenario_.world(), scenario_.latency());
    platform.set_fault_model(&faults);
    return CampaignExecutor(platform).execute(requests);
  };
  const CampaignReport a = run();
  const CampaignReport b = run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_EQ(a.credits_spent, b.credits_spent);
  EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
}

TEST_F(ExecutorTest, CollectResultsOffKeepsOnlyTheAccounting) {
  Platform platform(scenario_.world(), scenario_.latency());
  ExecutorConfig config;
  config.collect_results = false;
  CampaignExecutor executor(platform, config);

  const std::span<const sim::HostId> vps{scenario_.vps().data() + 140, 5};
  const std::span<const sim::HostId> targets{scenario_.targets().data(), 5};
  const CampaignReport report = executor.execute(mesh_requests(vps, targets));
  EXPECT_EQ(report.completed, report.requested);
  EXPECT_TRUE(report.results.empty());
}

}  // namespace
}  // namespace geoloc::atlas
