// Regression tests for the env-parsing fixes: int_or must reject what
// atoi silently accepted (trailing junk, overflow, leading whitespace),
// and threads() must clamp a runaway GEOLOC_THREADS instead of trying to
// spawn 100k workers.
//
// These tests mutate the process environment; each one restores the
// variable it touched. They live in the obs binary (not geoloc_tests)
// so the serial ctest ordering of this binary keeps setenv data races
// away from the scenario-heavy suites.
#include "util/env.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <thread>

namespace geoloc::util::env {
namespace {

constexpr const char* kVar = "GEOLOC_OBSTEST_INT";

class EnvIntOrTest : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv(kVar); }

  static int parse(const char* value, int fallback = -7) {
    ::setenv(kVar, value, /*overwrite=*/1);
    return int_or(kVar, fallback);
  }
};

TEST_F(EnvIntOrTest, AcceptsPlainPositiveIntegers) {
  EXPECT_EQ(parse("8"), 8);
  EXPECT_EQ(parse("1"), 1);
  EXPECT_EQ(parse("250"), 250);
}

TEST_F(EnvIntOrTest, UnsetFallsBack) {
  ::unsetenv(kVar);
  EXPECT_EQ(int_or(kVar, 42), 42);
}

TEST_F(EnvIntOrTest, RejectsTrailingJunk) {
  // atoi("8x") returns 8; the fixed parser requires full consumption.
  EXPECT_EQ(parse("8x"), -7);
  EXPECT_EQ(parse("8 "), -7);
  EXPECT_EQ(parse("12.5"), -7);
}

TEST_F(EnvIntOrTest, RejectsLeadingWhitespace) {
  // atoi(" 8") returns 8; from_chars does not skip whitespace.
  EXPECT_EQ(parse(" 8"), -7);
  EXPECT_EQ(parse("\t8"), -7);
}

TEST_F(EnvIntOrTest, RejectsNonNumeric) {
  EXPECT_EQ(parse("abc"), -7);
  EXPECT_EQ(parse(""), -7);
  EXPECT_EQ(parse("+"), -7);
}

TEST_F(EnvIntOrTest, RejectsNonPositive) {
  EXPECT_EQ(parse("0"), -7);
  EXPECT_EQ(parse("-3"), -7);
}

TEST_F(EnvIntOrTest, RejectsOutOfRange) {
  // atoi on overflow is undefined behaviour; from_chars reports it.
  EXPECT_EQ(parse("99999999999999999999"), -7);
}

class EnvThreadsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (const char* v = std::getenv("GEOLOC_THREADS")) saved_ = v;
  }
  void TearDown() override {
    if (saved_.has_value()) {
      ::setenv("GEOLOC_THREADS", saved_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv("GEOLOC_THREADS");
    }
  }

 private:
  std::optional<std::string> saved_;
};

TEST_F(EnvThreadsTest, CeilingIsBoundedAndPositive) {
  const unsigned cap = max_threads();
  EXPECT_GE(cap, 1u);
  EXPECT_LE(cap, 256u);
}

TEST_F(EnvThreadsTest, RunawayRequestIsClampedToCeiling) {
  ::setenv("GEOLOC_THREADS", "100000", /*overwrite=*/1);
  EXPECT_EQ(threads(), max_threads());
}

TEST_F(EnvThreadsTest, ModestRequestPassesThrough) {
  ::setenv("GEOLOC_THREADS", "2", /*overwrite=*/1);
  EXPECT_EQ(threads(), 2u);
}

TEST_F(EnvThreadsTest, JunkValueFallsBackToHardwareConcurrency) {
  ::setenv("GEOLOC_THREADS", "8x", /*overwrite=*/1);
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(threads(), hw > 0 ? hw : 1u);
}

}  // namespace
}  // namespace geoloc::util::env
