// Latency-model unit tests plus the SOI-safety property sweep — the
// cornerstone invariant of the whole reproduction: no measurement may beat
// the speed of Internet with respect to *true* host locations.
#include "sim/latency_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "geo/constants.h"
#include "geo/geodesy.h"
#include "sim/world.h"

namespace geoloc::sim {
namespace {

class LatencyTest : public ::testing::Test {
 protected:
  LatencyTest() : latency_(world_) {
    auto gen = world_.rng().fork("latency-test").gen();
    // A spread of hosts across random places, mixed classes.
    for (int i = 0; i < 60; ++i) {
      Host h;
      h.addr = net::IPv4Address{static_cast<std::uint32_t>(0x0A000000 + i)};
      h.kind = i % 2 == 0 ? HostKind::Probe : HostKind::Anchor;
      h.place = world_.cities()[gen.index(world_.cities().size())];
      h.true_location = world_.sample_location(h.place, 5.0, gen);
      h.reported_location = h.true_location;
      h.last_mile_ms = gen.uniform(0.1, 3.0);
      hosts_.push_back(world_.add_host(h));
    }
  }

  World world_;
  LatencyModel latency_;
  std::vector<HostId> hosts_;
};

TEST_F(LatencyTest, BaseRttIsSymmetric) {
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(latency_.base_rtt_ms(hosts_[i], hosts_[j]),
                       latency_.base_rtt_ms(hosts_[j], hosts_[i]));
    }
  }
}

TEST_F(LatencyTest, BaseRttIsDeterministic) {
  const double a = latency_.base_rtt_ms(hosts_[0], hosts_[1]);
  const double b = latency_.base_rtt_ms(hosts_[0], hosts_[1]);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST_F(LatencyTest, SamplesNeverBelowBase) {
  auto gen = world_.rng().fork("s").gen();
  const double base = latency_.base_rtt_ms(hosts_[0], hosts_[1]);
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(latency_.sample_rtt_ms(hosts_[0], hosts_[1], gen), base);
  }
}

TEST_F(LatencyTest, PairInflationAtLeastFloor) {
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = i + 1; j < 20; ++j) {
      EXPECT_GE(latency_.pair_inflation(hosts_[i], hosts_[j]),
                latency_.config().min_inflation);
    }
  }
}

TEST_F(LatencyTest, MinRttDecreasesWithMorePackets) {
  auto g1 = world_.rng().fork("p1").gen();
  auto g2 = world_.rng().fork("p1").gen();  // same stream
  const auto one = latency_.min_rtt_ms(hosts_[2], hosts_[3], 1, g1);
  // With the same generator state, more packets can only lower the min.
  const auto ten = latency_.min_rtt_ms(hosts_[2], hosts_[3], 10, g2);
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(ten.has_value());
  EXPECT_LE(*ten, *one + 1e-12);
}

TEST_F(LatencyTest, UnresponsiveHostReturnsNothing) {
  Host h;
  h.addr = net::IPv4Address{10, 9, 9, 9};
  h.place = world_.cities()[0];
  h.true_location = world_.place(h.place).location;
  h.reported_location = h.true_location;
  h.responsive = false;
  const HostId dead = world_.add_host(h);
  auto gen = world_.rng().fork("d").gen();
  EXPECT_FALSE(latency_.min_rtt_ms(hosts_[0], dead, 3, gen).has_value());
}

TEST_F(LatencyTest, SameCityPairsAreFastDifferentContinentSlow) {
  // Build two hosts in the same city and two far apart, compare.
  auto gen = world_.rng().fork("x").gen();
  Host a, b;
  a.addr = net::IPv4Address{10, 8, 0, 1};
  b.addr = net::IPv4Address{10, 8, 0, 2};
  a.place = b.place = world_.cities()[0];
  a.true_location = world_.sample_location(a.place, 2.0, gen);
  b.true_location = world_.sample_location(b.place, 2.0, gen);
  a.reported_location = a.true_location;
  b.reported_location = b.true_location;
  a.last_mile_ms = b.last_mile_ms = 0.2;
  const HostId ha = world_.add_host(a);
  const HostId hb = world_.add_host(b);
  const double close = latency_.base_rtt_ms(ha, hb);

  double far = 0.0;
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    const double d = geo::distance_km(world_.host(ha).true_location,
                                      world_.host(hosts_[i]).true_location);
    if (d > 5'000.0) {
      far = latency_.base_rtt_ms(ha, hosts_[i]);
      break;
    }
  }
  if (far > 0.0) EXPECT_GT(far, close);
}

TEST_F(LatencyTest, RouterHopRttIsNoisierThanPing) {
  const HostId router = world_.router_of(world_.host(hosts_[1]).place);
  auto gen = world_.rng().fork("r").gen();
  // Hop RTT varies across measurements (ICMP generation delay),
  // end-to-end base does not.
  const double h1 = latency_.router_hop_rtt_ms(hosts_[0], router, gen);
  const double h2 = latency_.router_hop_rtt_ms(hosts_[0], router, gen);
  EXPECT_NE(h1, h2);
}

TEST_F(LatencyTest, AccessPenaltyRaisesRtt) {
  // Find a poorly connected city without local peering if one exists; its
  // hosts' RTTs must carry the penalty even for nearby pairs.
  ASSERT_FALSE(world_.poorly_connected_cities().empty());
  const PlaceId poor = world_.poorly_connected_cities()[0];
  auto gen = world_.rng().fork("pen").gen();
  Host a;
  a.addr = net::IPv4Address{10, 7, 0, 1};
  a.place = poor;
  a.true_location = world_.place(poor).location;
  a.reported_location = a.true_location;
  a.last_mile_ms = 0.1;
  const HostId ha = world_.add_host(a);
  // Compare against a clean host far from `poor` but at the same distance
  // class: the penalty shows up as an RTT floor above the geodesic minimum.
  const double rtt = latency_.base_rtt_ms(ha, hosts_[0]);
  const double d = geo::distance_km(world_.host(ha).true_location,
                                    world_.host(hosts_[0]).true_location);
  const bool same_city = world_.place(world_.host(hosts_[0]).place).parent ==
                         world_.place(poor).parent;
  if (!same_city) {
    EXPECT_GE(rtt, geo::distance_to_min_rtt_ms(d) +
                       world_.access_penalty_ms(poor));
  }
}

// ---------------------------------------------------------------------------
// Property: SOI safety. For random host pairs and repeated samples, the RTT
// never violates the 2/3-c bound w.r.t. true locations.
class SoiProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SoiProperty, NoSampleBeatsTheSpeedOfInternet) {
  WorldConfig wc;
  wc.seed = GetParam();
  World world(wc);
  LatencyModel latency(world);
  auto gen = world.rng().fork("soi-prop").gen();

  std::vector<HostId> hosts;
  for (int i = 0; i < 30; ++i) {
    Host h;
    h.addr = net::IPv4Address{static_cast<std::uint32_t>(0x0B000000 + i)};
    h.place = world.cities()[gen.index(world.cities().size())];
    h.true_location = world.sample_location(h.place, 8.0, gen);
    h.reported_location = h.true_location;
    h.last_mile_ms = gen.uniform(0.05, 10.0);
    hosts.push_back(world.add_host(h));
  }

  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < hosts.size(); ++j) {
      const double d = geo::distance_km(world.host(hosts[i]).true_location,
                                        world.host(hosts[j]).true_location);
      const auto rtt = latency.min_rtt_ms(hosts[i], hosts[j], 3, gen);
      ASSERT_TRUE(rtt.has_value());
      EXPECT_FALSE(geo::violates_soi(*rtt, d))
          << "pair " << i << "," << j << " rtt=" << *rtt << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoiProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace geoloc::sim
