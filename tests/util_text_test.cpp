// Tests for the text-rendering helpers (tables and ASCII charts).
#include <gtest/gtest.h>

#include <string>

#include "util/ascii_chart.h"
#include "util/table.h"

namespace geoloc::util {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t{"Demo"};
  t.header({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t;
  t.header({"a", "b"});
  t.row({"longvalue", "x"});
  const std::string out = t.render();
  // The 'b' header must start at the same column as 'x'.
  const auto header_line = out.substr(0, out.find('\n'));
  const auto b_pos = header_line.find('b');
  const auto last_line_start = out.rfind('\n', out.size() - 2) + 1;
  const auto x_pos = out.find('x', last_line_start) - last_line_start;
  EXPECT_EQ(b_pos, x_pos);
}

TEST(TextTable, RaggedRowsDoNotCrash) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"only-one"});
  EXPECT_FALSE(t.render().empty());
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::pct(0.132, 1), "13.2%");
}

TEST(AsciiChart, CdfChartContainsLegendAndMarks) {
  CdfSeries s1{"fast", {1.0, 2.0, 3.0, 4.0}};
  CdfSeries s2{"slow", {10.0, 20.0, 30.0}};
  const std::string out = render_cdf_chart({s1, s2});
  EXPECT_NE(out.find("fast"), std::string::npos);
  EXPECT_NE(out.find("slow"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiChart, EmptySeriesRenders) {
  EXPECT_FALSE(render_cdf_chart({}).empty());
  CdfSeries empty{"none", {}};
  EXPECT_FALSE(render_cdf_chart({empty}).empty());
}

TEST(AsciiChart, LinearAxisOption) {
  ChartOptions opt;
  opt.log_x = false;
  opt.x_label = "seconds";
  CdfSeries s{"t", {0.0, 1.0, 2.0}};
  const std::string out = render_cdf_chart({s}, opt);
  EXPECT_NE(out.find("seconds"), std::string::npos);
}

TEST(AsciiChart, ScatterPlotsPoints) {
  ScatterSeries s{"pts", {1.0, 10.0, 100.0}, {2.0, 20.0, 200.0}};
  const std::string out = render_scatter_chart({s});
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("pts"), std::string::npos);
}

TEST(AsciiChart, ScatterHandlesEmpty) {
  EXPECT_FALSE(render_scatter_chart({}).empty());
}

}  // namespace
}  // namespace geoloc::util
