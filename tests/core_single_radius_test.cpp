#include "core/single_radius.h"

#include <gtest/gtest.h>

namespace geoloc::core {
namespace {

TEST(SingleRadius, AnswersWithinBudget) {
  const std::vector<VpObservation> obs{{{10.0, 10.0}, 25.0},
                                       {{20.0, 20.0}, 4.0}};
  const auto r = single_radius(obs);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner_index, 1u);
  EXPECT_DOUBLE_EQ(r->min_rtt_ms, 4.0);
}

TEST(SingleRadius, AbstainsBeyondBudget) {
  const std::vector<VpObservation> obs{{{10.0, 10.0}, 25.0},
                                       {{20.0, 20.0}, 12.0}};
  EXPECT_FALSE(single_radius(obs).has_value());
}

TEST(SingleRadius, BudgetIsConfigurable) {
  const std::vector<VpObservation> obs{{{10.0, 10.0}, 12.0}};
  SingleRadiusConfig wide;
  wide.max_rtt_ms = 15.0;
  EXPECT_TRUE(single_radius(obs, wide).has_value());
  SingleRadiusConfig narrow;
  narrow.max_rtt_ms = 5.0;
  EXPECT_FALSE(single_radius(obs, narrow).has_value());
}

TEST(SingleRadius, EmptyAbstains) {
  EXPECT_FALSE(single_radius({}).has_value());
}

TEST(SingleRadius, BoundaryIsInclusive) {
  const std::vector<VpObservation> obs{{{1.0, 1.0}, 10.0}};
  EXPECT_TRUE(single_radius(obs).has_value());
}

}  // namespace
}  // namespace geoloc::core
