#include "sim/cost_model.h"

#include <gtest/gtest.h>

namespace geoloc::sim {
namespace {

TEST(CostModel, StartsAtZero) {
  CostModel cost;
  EXPECT_DOUBLE_EQ(cost.elapsed_seconds(), 0.0);
  EXPECT_EQ(cost.api_rounds(), 0u);
  EXPECT_EQ(cost.geocode_queries(), 0u);
  EXPECT_EQ(cost.web_tests(), 0u);
}

TEST(CostModel, ApiRoundsAccumulate) {
  CostModel cost;
  cost.charge_api_round();
  cost.charge_api_round();
  EXPECT_EQ(cost.api_rounds(), 2u);
  EXPECT_DOUBLE_EQ(cost.elapsed_seconds(),
                   2.0 * cost.config().api_round_seconds);
}

TEST(CostModel, GeocodeIsRateLimited) {
  CostModelConfig cfg;
  cfg.geocode_rate_per_second = 8.0;  // the paper's observed limit
  CostModel cost(cfg);
  cost.charge_geocode_queries(878);   // the paper's median per target
  EXPECT_EQ(cost.geocode_queries(), 878u);
  EXPECT_NEAR(cost.elapsed_seconds(), 878.0 / 8.0, 1e-9);
}

TEST(CostModel, WebTestsAmortizedOverParallelism) {
  CostModelConfig cfg;
  cfg.dns_query_seconds = 0.1;
  cfg.wget_seconds = 0.45;
  cfg.web_test_parallelism = 10;
  CostModel cost(cfg);
  cost.charge_web_tests(100);
  // per test: 0.1 + 2*0.45 = 1.0 s; 100 tests / 10 parallel = 10 s.
  EXPECT_NEAR(cost.elapsed_seconds(), 10.0, 1e-9);
  EXPECT_EQ(cost.web_tests(), 100u);
}

TEST(CostModel, RawSecondsAdd) {
  CostModel cost;
  cost.charge_seconds(3.5);
  cost.charge_seconds(1.5);
  EXPECT_DOUBLE_EQ(cost.elapsed_seconds(), 5.0);
}

TEST(CostModel, MixedChargesSum) {
  CostModel cost;
  cost.charge_api_round();
  cost.charge_geocode_queries(80);
  cost.charge_web_tests(320);
  const double expected =
      cost.config().api_round_seconds + 80.0 / cost.config().geocode_rate_per_second +
      320.0 * (cost.config().dns_query_seconds + 2 * cost.config().wget_seconds) /
          cost.config().web_test_parallelism;
  EXPECT_NEAR(cost.elapsed_seconds(), expected, 1e-9);
}

}  // namespace
}  // namespace geoloc::sim
