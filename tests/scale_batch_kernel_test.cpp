// Batched geodesic kernels vs the scalar oracles (DESIGN.md §14).
//
// distance_km_batch carries a BIT-IDENTITY contract against the scalar
// geo::distance_km — the whole tile-vs-dense equivalence argument rests on
// it — so the assertions here are EXPECT_EQ on doubles, not near-equality.
// chord_distance_km_batch carries a documented 1e-6 km tolerance instead.
// Both run over the adversarial pairs where haversine implementations
// diverge first: poles, anti-meridian crossings, antipodal and
// near-coincident points. The LatencyModel batch base-RTT path is pinned
// the same way against the scalar base_rtt_ms.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geo/geodesy.h"
#include "geo/geodesy_batch.h"
#include "geo/geopoint.h"
#include "sim/latency_model.h"
#include "test_scenario.h"
#include "util/rng.h"

namespace geoloc {
namespace {

std::vector<geo::GeoPoint> adversarial_points() {
  return {
      {90.0, 0.0},           // north pole
      {-90.0, 0.0},          // south pole
      {90.0, 137.0},         // pole with a nonzero longitude
      {0.0, 0.0},            // origin
      {0.0, 180.0},          // anti-meridian
      {0.0, -180.0},         // anti-meridian, other sign
      {45.0, 179.999999},    // just west of the anti-meridian
      {45.0, -179.999999},   // just east of it
      {-45.0, 135.0},        // antipode of (45, -45)
      {45.0, -45.0},
      {10.0, 10.0},          // near-coincident pair
      {10.0, 10.0000001},
      {10.0000001, 10.0},
      {52.5200, 13.4050},    // Berlin
      {-33.8688, 151.2093},  // Sydney (≈ antipodal to the Azores)
      {38.7223, -27.2206},   // Azores
      {1e-12, -1e-12},       // denormal-adjacent coordinates
  };
}

std::vector<geo::GeoPoint> random_points(std::size_t n, std::uint64_t seed) {
  util::Pcg32 gen{seed};
  std::vector<geo::GeoPoint> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({gen.uniform(-90.0, 90.0), gen.uniform(-180.0, 180.0)});
  }
  return pts;
}

TEST(ScaleBatchKernel, HaversineBatchIsBitIdenticalOnAdversarialPoints) {
  const auto pts = adversarial_points();
  const geo::PointsSoA soa = geo::PointsSoA::build(pts);
  std::vector<double> out(pts.size());
  for (const geo::GeoPoint& from : pts) {
    geo::distance_km_batch(from, soa, 0, pts.size(), out.data());
    for (std::size_t j = 0; j < pts.size(); ++j) {
      const double oracle = geo::distance_km(from, pts[j]);
      // Bit-identity, not tolerance: compare exact doubles.
      EXPECT_EQ(oracle, out[j]) << "from (" << from.lat_deg << ","
                                << from.lon_deg << ") to (" << pts[j].lat_deg
                                << "," << pts[j].lon_deg << ")";
    }
  }
}

TEST(ScaleBatchKernel, HaversineBatchIsBitIdenticalOnRandomPoints) {
  const auto pts = random_points(512, /*seed=*/0xabcdefULL);
  const auto froms = random_points(32, /*seed=*/0x123456ULL);
  const geo::PointsSoA soa = geo::PointsSoA::build(pts);
  std::vector<double> out(pts.size());
  for (const geo::GeoPoint& from : froms) {
    geo::distance_km_batch(from, soa, 0, pts.size(), out.data());
    for (std::size_t j = 0; j < pts.size(); ++j) {
      EXPECT_EQ(geo::distance_km(from, pts[j]), out[j]);
    }
  }
}

TEST(ScaleBatchKernel, HaversineBatchHonorsSubranges) {
  const auto pts = random_points(100, /*seed=*/7);
  const geo::PointsSoA soa = geo::PointsSoA::build(pts);
  const geo::GeoPoint from{48.8566, 2.3522};
  std::vector<double> full(pts.size());
  geo::distance_km_batch(from, soa, 0, pts.size(), full.data());
  std::vector<double> part(30);
  geo::distance_km_batch(from, soa, 40, 70, part.data());
  for (std::size_t j = 0; j < 30; ++j) EXPECT_EQ(full[40 + j], part[j]);
}

TEST(ScaleBatchKernel, ChordKernelWithinMillimetreOfOracle) {
  auto pts = adversarial_points();
  const auto extra = random_points(256, /*seed=*/99);
  pts.insert(pts.end(), extra.begin(), extra.end());
  const geo::PointsSoA soa = geo::PointsSoA::build(pts);
  std::vector<double> out(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    geo::chord_distance_km_batch(soa, i, soa, 0, pts.size(), out.data());
    for (std::size_t j = 0; j < pts.size(); ++j) {
      const double oracle = geo::distance_km(pts[i], pts[j]);
      // Millimetre everywhere except near the antipode, where asin's
      // conditioning diverges and the documented bound relaxes to 1 m
      // (geodesy_batch.h). 19 915 km ≈ 100 km short of half circumference.
      const double tol = oracle > 19'915.0 ? 1e-3 : 1e-6;
      EXPECT_NEAR(oracle, out[j], tol)
          << "pair " << i << " -> " << j << " off by "
          << std::abs(oracle - out[j]) << " km";
    }
  }
}

TEST(ScaleBatchKernel, PointsSoAPrecomputesWhatItClaims) {
  const auto pts = adversarial_points();
  const geo::PointsSoA soa = geo::PointsSoA::build(pts);
  ASSERT_EQ(soa.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(soa.lat_rad[i], geo::deg_to_rad(pts[i].lat_deg));
    EXPECT_EQ(soa.lon_deg[i], pts[i].lon_deg);
    EXPECT_EQ(soa.cos_lat[i], std::cos(geo::deg_to_rad(pts[i].lat_deg)));
    // Unit vectors are unit length.
    const double norm = soa.x[i] * soa.x[i] + soa.y[i] * soa.y[i] +
                        soa.z[i] * soa.z[i];
    EXPECT_NEAR(norm, 1.0, 1e-12);
  }
}

// The batch base-RTT path (SoA gather + one-to-many kernel + cached
// city-pair draws) must reproduce the scalar base_rtt_ms doubles exactly:
// the tile cells feed these into the same packet loop the dense path uses,
// so any drift here is a byte-level campaign divergence.
TEST(ScaleBatchKernel, BatchBaseRttMatchesScalarBitForBit) {
  const auto& s = testing::small_scenario();
  const auto& latency = s.latency();
  const auto& vps = s.vps();
  const auto& targets = s.targets();
  const std::size_t n_vps = std::min<std::size_t>(40, vps.size());
  const auto vp_soa = latency.host_soa(
      std::span<const sim::HostId>(vps.data(), n_vps));
  const auto dst_soa = latency.host_soa(targets);

  std::vector<double> out(targets.size());
  for (std::size_t i = 0; i < n_vps; ++i) {
    sim::LatencyModel::CityPairCache cache;
    latency.base_rtt_ms_batch(vp_soa, i, dst_soa, 0, targets.size(), cache,
                              out.data());
    for (std::size_t j = 0; j < targets.size(); ++j) {
      EXPECT_EQ(latency.base_rtt_ms(vps[i], targets[j]), out[j])
          << "vp row " << i << ", target col " << j;
    }
  }
}

// The city-pair cache stores the *draw values* keyed on the unordered city
// pair; reusing a cached draw must not perturb later cells (each
// (pair, label) substream is independent of consumption order). Running
// the same row twice — once with a cold cache, once warm — must agree.
TEST(ScaleBatchKernel, CityPairCacheIsOrderInsensitive) {
  const auto& s = testing::small_scenario();
  const auto& latency = s.latency();
  const auto& vps = s.vps();
  const auto& targets = s.targets();
  const auto vp_soa = latency.host_soa(
      std::span<const sim::HostId>(vps.data(), 8));
  const auto dst_soa = latency.host_soa(targets);

  std::vector<double> cold(targets.size()), warm(targets.size());
  for (std::size_t i = 0; i < 8; ++i) {
    sim::LatencyModel::CityPairCache fresh;
    latency.base_rtt_ms_batch(vp_soa, i, dst_soa, 0, targets.size(), fresh,
                              cold.data());
    sim::LatencyModel::CityPairCache shared;
    // Prime the cache with the second half, then compute the full row.
    latency.base_rtt_ms_batch(vp_soa, i, dst_soa, targets.size() / 2,
                              targets.size(), shared, warm.data());
    latency.base_rtt_ms_batch(vp_soa, i, dst_soa, 0, targets.size(), shared,
                              warm.data());
    EXPECT_EQ(cold, warm) << "row " << i;
  }
}

}  // namespace
}  // namespace geoloc
