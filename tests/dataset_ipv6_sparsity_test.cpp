#include "dataset/ipv6_sparsity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace geoloc::dataset {
namespace {

TEST(Ipv6Sparsity, Ipv4Slash24IsCertain) {
  SparsityQuestion q;
  q.prefix_size_log2 = 8;  // a /24: 256 addresses
  q.responsive_hosts = 3;
  const SparsityAnswer a = analyze_sparsity(q);
  EXPECT_DOUBLE_EQ(a.addresses, 256.0);
  EXPECT_DOUBLE_EQ(a.prefix_coverage, 1.0);  // the whole /24 fits the budget
  EXPECT_NEAR(a.p_at_least_one, 1.0 - std::exp(-3.0), 1e-12);
}

TEST(Ipv6Sparsity, Slash64IsHopeless) {
  SparsityQuestion q;  // defaults: /64, 1e4 hosts, 500 pps, 30 days
  const SparsityAnswer a = analyze_sparsity(q);
  EXPECT_LT(a.expected_hits, 1e-6);
  EXPECT_LT(a.p_at_least_one, 1e-6);
  EXPECT_LT(a.prefix_coverage, 1e-7);
}

TEST(Ipv6Sparsity, HitsScaleWithBudgetAndDensity) {
  SparsityQuestion q;
  q.prefix_size_log2 = 40;
  q.responsive_hosts = 1e6;
  const SparsityAnswer base = analyze_sparsity(q);
  q.budget_seconds *= 2;
  const SparsityAnswer longer = analyze_sparsity(q);
  EXPECT_NEAR(longer.expected_hits, 2.0 * base.expected_hits, 1e-9);
  q.responsive_hosts *= 10;
  const SparsityAnswer denser = analyze_sparsity(q);
  EXPECT_NEAR(denser.expected_hits, 20.0 * base.expected_hits, 1e-6);
}

TEST(Ipv6Sparsity, DensityCappedAtOne) {
  SparsityQuestion q;
  q.prefix_size_log2 = 4;  // 16 addresses
  q.responsive_hosts = 100;
  const SparsityAnswer a = analyze_sparsity(q);
  EXPECT_DOUBLE_EQ(a.responsive_density, 1.0);
}

TEST(Ipv6Sparsity, ProbesCappedAtPrefixSize) {
  SparsityQuestion q;
  q.prefix_size_log2 = 8;
  q.probe_rate_pps = 1e9;
  const SparsityAnswer a = analyze_sparsity(q);
  EXPECT_DOUBLE_EQ(a.probes_sent, 256.0);
}

}  // namespace
}  // namespace geoloc::dataset
