#include "landmark/mapping_service.h"

#include <gtest/gtest.h>

#include <set>

#include "geo/geodesy.h"

namespace geoloc::landmark {
namespace {

TEST(MappingService, SamePointSameZone) {
  MappingService m;
  const geo::GeoPoint p{48.8566, 2.3522};
  EXPECT_EQ(m.zone_of(p), m.zone_of(p));
}

TEST(MappingService, NearbyPointsShareZoneFarPointsDoNot) {
  MappingService m;
  const geo::GeoPoint p{48.8566, 2.3522};
  const geo::GeoPoint near = geo::destination(p, 0.0, 0.2);
  const geo::GeoPoint far = geo::destination(p, 0.0, 50.0);
  // 0.2 km almost always stays within a ~5 km cell (cell-straddling pairs
  // exist, but not for this fixed point).
  EXPECT_EQ(m.zone_of(p), m.zone_of(near));
  EXPECT_NE(m.zone_of(p), m.zone_of(far));
}

TEST(MappingService, ZoneFormat) {
  MappingService m;
  const std::string z = m.zone_of(geo::GeoPoint{0.0, 0.0});
  EXPECT_EQ(z.size(), 12u);
  EXPECT_EQ(z[0], 'Z');
  EXPECT_EQ(z[6], 'x');
}

TEST(MappingService, ReverseGeocodeCountsQueries) {
  MappingService m;
  EXPECT_EQ(m.query_count(), 0u);
  (void)m.reverse_geocode(geo::GeoPoint{10.0, 10.0});
  (void)m.reverse_geocode(geo::GeoPoint{11.0, 11.0});
  EXPECT_EQ(m.query_count(), 2u);
  (void)m.zone_of(geo::GeoPoint{12.0, 12.0});  // internal use: not counted
  EXPECT_EQ(m.query_count(), 2u);
  m.reset_query_count();
  EXPECT_EQ(m.query_count(), 0u);
}

TEST(MappingService, NeighborZonesAreNineAndUnique) {
  MappingService m;
  const std::string z = m.zone_of(geo::GeoPoint{48.85, 2.35});
  const auto zones = m.neighbor_zones(z);
  EXPECT_EQ(zones.size(), 9u);
  const std::set<std::string> unique(zones.begin(), zones.end());
  EXPECT_EQ(unique.size(), 9u);
  EXPECT_NE(std::find(zones.begin(), zones.end(), z), zones.end());
}

TEST(MappingService, NeighborZonesCoverAdjacentPoints) {
  MappingService m;
  const geo::GeoPoint p{48.85, 2.35};
  const auto zones = m.neighbor_zones(m.zone_of(p));
  // A point ~4 km away lands in one of the 9 zones.
  const std::string other = m.zone_of(geo::destination(p, 45.0, 4.0));
  EXPECT_NE(std::find(zones.begin(), zones.end(), other), zones.end());
}

TEST(MappingService, MalformedZoneFallsBack) {
  MappingService m;
  const auto zones = m.neighbor_zones("garbage");
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(zones[0], "garbage");
}

TEST(MappingService, MalformedZoneKeysAreRejectedNotMisparsed) {
  // The strict zone parser (spatial::ZipGrid::parse, replacing the old
  // sscanf) must reject anything the formatter could not have produced:
  // neighbor_zones answers {input} instead of expanding a misread key.
  MappingService m;
  for (const char* bad : {
           "Z1x2",              // fields too short
           "Z00001x00002junk",  // trailing garbage (sscanf accepted this)
           "Z00001x00002 ",     // trailing whitespace
           "Z+0001x00002",      // explicit sign
           "z00001x00002",      // wrong case
           "Z00001y00002",      // wrong separator
           "Zx",                // empty fields
           "Z0000Ax00002",      // hex digit
       }) {
    const auto zones = m.neighbor_zones(bad);
    ASSERT_EQ(zones.size(), 1u) << "\"" << bad << "\"";
    EXPECT_EQ(zones[0], bad);
  }
}

TEST(MappingService, WideZoneKeysRoundTripThroughNeighborZones) {
  // %05d is a minimum width: a fine grid can produce 6-digit cells. The
  // parser accepts its own formatter's output at any width.
  MappingService fine{0.001};
  const std::string z = fine.zone_of(geo::GeoPoint{89.9, 179.9});
  EXPECT_GT(z.size(), 12u);
  const auto zones = fine.neighbor_zones(z);
  EXPECT_EQ(zones.size(), 9u);
  EXPECT_NE(std::find(zones.begin(), zones.end(), z), zones.end());
}

TEST(MappingService, CellSizeIsConfigurable) {
  MappingService coarse{0.5};
  MappingService fine{0.01};
  // Off cell boundaries: 40.0/-74.0 sits exactly on a 0.5-degree edge.
  const geo::GeoPoint p{40.13, -74.12};
  const geo::GeoPoint q = geo::destination(p, 90.0, 3.0);
  EXPECT_EQ(coarse.zone_of(p), coarse.zone_of(q));
  EXPECT_NE(fine.zone_of(p), fine.zone_of(q));
}

}  // namespace
}  // namespace geoloc::landmark
