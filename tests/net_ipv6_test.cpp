#include "net/ipv6.h"

#include <gtest/gtest.h>

namespace geoloc::net {
namespace {

TEST(IPv6Address, ParseFullForm) {
  const auto a =
      IPv6Address::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  EXPECT_EQ(a->group(7), 0x0001);
}

TEST(IPv6Address, ParseCompressedForms) {
  EXPECT_EQ(IPv6Address::parse("::"), (IPv6Address{0, 0}));
  EXPECT_EQ(IPv6Address::parse("::1"), (IPv6Address{0, 1}));
  const auto a = IPv6Address::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->group(0), 0x2001);
  EXPECT_EQ(a->group(1), 0x0db8);
  EXPECT_EQ(a->group(7), 1);
  const auto b = IPv6Address::parse("fe80::");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->group(0), 0xfe80);
  EXPECT_EQ(b->lo(), 0u);
}

TEST(IPv6Address, ParseRejectsMalformed) {
  EXPECT_FALSE(IPv6Address::parse("").has_value());
  EXPECT_FALSE(IPv6Address::parse(":::").has_value());
  EXPECT_FALSE(IPv6Address::parse("1:2:3").has_value());
  EXPECT_FALSE(IPv6Address::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(IPv6Address::parse("2001:db8::1::2").has_value());
  EXPECT_FALSE(IPv6Address::parse("g001::").has_value());
  EXPECT_FALSE(IPv6Address::parse("12345::").has_value());
  EXPECT_FALSE(IPv6Address::parse("1:2:3:4:5:6:7:").has_value());
}

TEST(IPv6Address, ToStringCanonical) {
  EXPECT_EQ(IPv6Address(0, 0).to_string(), "::");
  EXPECT_EQ(IPv6Address(0, 1).to_string(), "::1");
  EXPECT_EQ(IPv6Address::parse("2001:db8::1")->to_string(), "2001:db8::1");
  EXPECT_EQ(IPv6Address::parse("fe80::")->to_string(), "fe80::");
  EXPECT_EQ(IPv6Address::parse("1:2:3:4:5:6:7:8")->to_string(),
            "1:2:3:4:5:6:7:8");
  // Longest zero run wins; a single zero group is not compressed.
  EXPECT_EQ(IPv6Address::parse("2001:0:0:1:0:0:0:1")->to_string(),
            "2001:0:0:1::1");
  EXPECT_EQ(IPv6Address::parse("1:0:2:3:4:5:6:7")->to_string(),
            "1:0:2:3:4:5:6:7");
}

TEST(IPv6Address, RoundTrip) {
  for (const char* text :
       {"::", "::1", "2001:db8::1", "fe80::1234", "1:2:3:4:5:6:7:8",
        "2001:db8:85a3::8a2e:370:7334", "ff02::2"}) {
    const auto a = IPv6Address::parse(text);
    ASSERT_TRUE(a.has_value()) << text;
    EXPECT_EQ(IPv6Address::parse(a->to_string()), a) << text;
  }
}

TEST(IPv6Address, Ordering) {
  EXPECT_LT(*IPv6Address::parse("::1"), *IPv6Address::parse("::2"));
  EXPECT_LT(*IPv6Address::parse("2001::"), *IPv6Address::parse("2002::"));
}

TEST(Prefix6, MasksAndContains) {
  const auto p = Prefix6::parse("2001:db8::/32");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 32);
  EXPECT_TRUE(p->contains(*IPv6Address::parse("2001:db8:1234::1")));
  EXPECT_FALSE(p->contains(*IPv6Address::parse("2001:db9::1")));
  EXPECT_EQ(p->to_string(), "2001:db8::/32");
}

TEST(Prefix6, MaskingBelow64Bits) {
  const Prefix6 p{*IPv6Address::parse("2001:db8::ffff"), 96};
  EXPECT_EQ(p.network().to_string(), "2001:db8::");
  // Differs only in the host part (last 32 bits): contained.
  EXPECT_TRUE(p.contains(*IPv6Address::parse("2001:db8::abcd")));
  // Differs inside the /96 (bit 95): not contained.
  EXPECT_FALSE(p.contains(*IPv6Address::parse("2001:db8::1:0:0")));
}

TEST(Prefix6, EdgeLengths) {
  const Prefix6 all{*IPv6Address::parse("ffff::"), 0};
  EXPECT_TRUE(all.contains(*IPv6Address::parse("::1")));
  EXPECT_EQ(all.size_log2(), 128);
  const Prefix6 host{*IPv6Address::parse("2001:db8::1"), 128};
  EXPECT_TRUE(host.contains(*IPv6Address::parse("2001:db8::1")));
  EXPECT_FALSE(host.contains(*IPv6Address::parse("2001:db8::2")));
  EXPECT_EQ(host.size_log2(), 0);
}

TEST(Prefix6, ParseRejectsBadLengths) {
  EXPECT_FALSE(Prefix6::parse("2001:db8::/129").has_value());
  EXPECT_FALSE(Prefix6::parse("2001:db8::").has_value());
  EXPECT_FALSE(Prefix6::parse("2001:db8::/x").has_value());
}

TEST(Prefix6, SizeLog2) {
  EXPECT_EQ(Prefix6::parse("::/64")->size_log2(), 64);
  EXPECT_EQ(Prefix6::parse("::/48")->size_log2(), 80);
}

}  // namespace
}  // namespace geoloc::net
