#include "core/shortest_ping.h"

#include <gtest/gtest.h>

namespace geoloc::core {
namespace {

TEST(ShortestPing, EmptyIsNullopt) {
  EXPECT_FALSE(shortest_ping({}).has_value());
}

TEST(ShortestPing, PicksTheMinimumRtt) {
  const std::vector<VpObservation> obs{
      {{10.0, 10.0}, 30.0}, {{20.0, 20.0}, 5.0}, {{30.0, 30.0}, 12.0}};
  const auto r = shortest_ping(obs);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner_index, 1u);
  EXPECT_DOUBLE_EQ(r->min_rtt_ms, 5.0);
  EXPECT_EQ(r->estimate, (geo::GeoPoint{20.0, 20.0}));
}

TEST(ShortestPing, SingleObservation) {
  const std::vector<VpObservation> obs{{{1.0, 2.0}, 7.0}};
  const auto r = shortest_ping(obs);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner_index, 0u);
}

TEST(ShortestPing, TiesGoToTheFirst) {
  const std::vector<VpObservation> obs{{{1.0, 1.0}, 5.0}, {{2.0, 2.0}, 5.0}};
  const auto r = shortest_ping(obs);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner_index, 0u);
}

}  // namespace
}  // namespace geoloc::core
