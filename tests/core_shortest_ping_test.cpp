#include "core/shortest_ping.h"

#include <gtest/gtest.h>

namespace geoloc::core {
namespace {

TEST(ShortestPing, EmptyIsNullopt) {
  EXPECT_FALSE(shortest_ping({}).has_value());
}

TEST(ShortestPing, PicksTheMinimumRtt) {
  const std::vector<VpObservation> obs{
      {{10.0, 10.0}, 30.0}, {{20.0, 20.0}, 5.0}, {{30.0, 30.0}, 12.0}};
  const auto r = shortest_ping(obs);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner_index, 1u);
  EXPECT_DOUBLE_EQ(r->min_rtt_ms, 5.0);
  EXPECT_EQ(r->estimate, (geo::GeoPoint{20.0, 20.0}));
}

TEST(ShortestPing, SingleObservation) {
  const std::vector<VpObservation> obs{{{1.0, 2.0}, 7.0}};
  const auto r = shortest_ping(obs);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner_index, 0u);
}

TEST(ShortestPing, TiesGoToTheFirst) {
  const std::vector<VpObservation> obs{{{1.0, 1.0}, 5.0}, {{2.0, 2.0}, 5.0}};
  const auto r = shortest_ping(obs);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner_index, 0u);
}

TEST(ShortestPingSurvey, CountsRespondersAndSkipsSilentVps) {
  const std::vector<std::optional<double>> rtts{
      std::nullopt, 12.0, std::nullopt, 4.0, 30.0};
  const std::vector<geo::GeoPoint> locations{
      {0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {4.0, 4.0}};
  const ShortestPingSurvey s = shortest_ping_survey(rtts, locations);
  EXPECT_EQ(s.candidates, 5u);
  EXPECT_EQ(s.responded, 3u);
  EXPECT_DOUBLE_EQ(s.response_rate(), 3.0 / 5.0);
  ASSERT_TRUE(s.best.has_value());
  // The winner index refers to the original candidate list, silent VPs
  // included.
  EXPECT_EQ(s.best->winner_index, 3u);
  EXPECT_DOUBLE_EQ(s.best->min_rtt_ms, 4.0);
  EXPECT_EQ(s.best->estimate, (geo::GeoPoint{3.0, 3.0}));
}

TEST(ShortestPingSurvey, NobodyAnswered) {
  const std::vector<std::optional<double>> rtts{std::nullopt, std::nullopt};
  const std::vector<geo::GeoPoint> locations{{0.0, 0.0}, {1.0, 1.0}};
  const ShortestPingSurvey s = shortest_ping_survey(rtts, locations);
  EXPECT_EQ(s.candidates, 2u);
  EXPECT_EQ(s.responded, 0u);
  EXPECT_FALSE(s.best.has_value());
  EXPECT_DOUBLE_EQ(s.response_rate(), 0.0);
}

TEST(ShortestPingSurvey, EmptyCandidateList) {
  const ShortestPingSurvey s = shortest_ping_survey({}, {});
  EXPECT_EQ(s.candidates, 0u);
  EXPECT_FALSE(s.best.has_value());
  EXPECT_DOUBLE_EQ(s.response_rate(), 0.0);
}

TEST(ShortestPingSurvey, FullResponseMatchesPlainShortestPing) {
  const std::vector<std::optional<double>> rtts{30.0, 5.0, 12.0};
  const std::vector<geo::GeoPoint> locations{
      {10.0, 10.0}, {20.0, 20.0}, {30.0, 30.0}};
  const ShortestPingSurvey s = shortest_ping_survey(rtts, locations);
  EXPECT_EQ(s.responded, 3u);
  ASSERT_TRUE(s.best.has_value());
  EXPECT_EQ(s.best->winner_index, 1u);
  EXPECT_DOUBLE_EQ(s.response_rate(), 1.0);
}

}  // namespace
}  // namespace geoloc::core
