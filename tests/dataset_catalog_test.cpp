#include "dataset/catalog.h"

#include <gtest/gtest.h>

#include <set>

#include "geo/geodesy.h"
#include "test_scenario.h"

namespace geoloc::dataset {
namespace {

using geoloc::testing::small_scenario;

TEST(Catalog, GeneratesRequestedCounts) {
  const auto& s = small_scenario();
  const auto& cfg = s.config().catalog;
  EXPECT_EQ(s.catalog().anchors.size(),
            static_cast<std::size_t>(cfg.anchor_quota.total() +
                                     cfg.anchors_misgeolocated));
  EXPECT_EQ(s.catalog().probes.size(),
            static_cast<std::size_t>(cfg.probes_kept +
                                     cfg.probes_misgeolocated));
}

TEST(Catalog, ContinentQuotasAreExactForCleanAnchors) {
  const auto& s = small_scenario();
  const auto& cfg = s.config().catalog;
  std::unordered_map<sim::Continent, int> counts;
  for (sim::HostId id : s.catalog().anchors) {
    if (s.world().host(id).misgeolocated) continue;
    counts[s.world().place(s.world().host(id).place).continent]++;
  }
  for (sim::Continent c : sim::all_continents()) {
    EXPECT_EQ(counts[c], cfg.anchor_quota.of(c)) << to_string(c);
  }
}

TEST(Catalog, ExactlyTheConfiguredHostsAreMisgeolocated) {
  const auto& s = small_scenario();
  const auto& cfg = s.config().catalog;
  int anchors_bad = 0, probes_bad = 0;
  for (sim::HostId id : s.catalog().anchors) {
    anchors_bad += s.world().host(id).misgeolocated;
  }
  for (sim::HostId id : s.catalog().probes) {
    probes_bad += s.world().host(id).misgeolocated;
  }
  EXPECT_EQ(anchors_bad, cfg.anchors_misgeolocated);
  EXPECT_EQ(probes_bad, cfg.probes_misgeolocated);
}

TEST(Catalog, MisgeolocatedHostsMovedFarEnough) {
  const auto& s = small_scenario();
  for (sim::HostId id : s.catalog().anchors) {
    const sim::Host& h = s.world().host(id);
    if (!h.misgeolocated) continue;
    EXPECT_GE(geo::distance_km(h.true_location, h.reported_location),
              s.config().catalog.misgeolocation_min_km * 0.99);
  }
}

TEST(Catalog, AnchorsAreAnchorsProbesAreProbes) {
  const auto& s = small_scenario();
  for (sim::HostId id : s.catalog().anchors) {
    EXPECT_EQ(s.world().host(id).kind, sim::HostKind::Anchor);
  }
  for (sim::HostId id : s.catalog().probes) {
    EXPECT_EQ(s.world().host(id).kind, sim::HostKind::Probe);
  }
}

TEST(Catalog, AnchorAddressesAreUniqueSites) {
  const auto& s = small_scenario();
  std::set<std::uint32_t> slash24s;
  for (sim::HostId id : s.catalog().anchors) {
    const auto p = net::slash24_of(s.world().host(id).addr);
    EXPECT_TRUE(slash24s.insert(p.network().value()).second)
        << "anchor /24 reused: " << p.to_string();
  }
}

TEST(Catalog, HostsHaveValidLocationsAndPlaces) {
  const auto& s = small_scenario();
  for (sim::HostId id : s.catalog().anchors) {
    const sim::Host& h = s.world().host(id);
    EXPECT_TRUE(h.true_location.valid());
    EXPECT_LT(h.place, s.world().places().size());
    EXPECT_GE(h.last_mile_ms, 0.0);
  }
}

TEST(Catalog, AnchorsAreBgpRoutable) {
  const auto& s = small_scenario();
  for (sim::HostId id : s.catalog().anchors) {
    const auto origin = s.world().bgp_lookup(s.world().host(id).addr);
    ASSERT_TRUE(origin.has_value());
    EXPECT_EQ(origin->second.value, s.world().host(id).asn.value);
  }
}

TEST(Catalog, AsCategoryMixResemblesTable2) {
  // Use the full paper-scale distribution only loosely at small scale:
  // Access must dominate probes; anchors must be spread across categories.
  const auto& s = small_scenario();
  auto probe_counts = count_by_as_category(s.world(), s.catalog().probes);
  auto anchor_counts = count_by_as_category(s.world(), s.catalog().anchors);
  const double probes = static_cast<double>(s.catalog().probes.size());
  EXPECT_GT(probe_counts[sim::AsCategory::Access] / probes, 0.6);
  EXPECT_GE(anchor_counts.size(), 4u);
  EXPECT_GT(anchor_counts[sim::AsCategory::Content], 0);
  EXPECT_GT(anchor_counts[sim::AsCategory::TransitAccess], 0);
}

TEST(Catalog, SectorDistributionDominatedByIT) {
  const auto& s = small_scenario();
  auto sectors = count_by_as_sector(s.world(), s.catalog().anchors);
  int total = 0;
  for (const auto& [sector, n] : sectors) total += n;
  // Section 4.4.1: ~72% "Computer and Information Technology" (sector 0);
  // the small scenario's 80-AS pool leaves room for sampling noise.
  EXPECT_GT(static_cast<double>(sectors[0]) / total, 0.5);
}

TEST(Catalog, DeterministicAcrossBuilds) {
  auto cfg = scenario::small_config();
  cfg.cache_dir = "";
  const scenario::Scenario s1(cfg);
  const scenario::Scenario s2(cfg);
  ASSERT_EQ(s1.catalog().anchors.size(), s2.catalog().anchors.size());
  for (std::size_t i = 0; i < s1.catalog().anchors.size(); ++i) {
    const auto& h1 = s1.world().host(s1.catalog().anchors[i]);
    const auto& h2 = s2.world().host(s2.catalog().anchors[i]);
    EXPECT_EQ(h1.addr, h2.addr);
    EXPECT_EQ(h1.true_location, h2.true_location);
    EXPECT_DOUBLE_EQ(h1.last_mile_ms, h2.last_mile_ms);
  }
}

}  // namespace
}  // namespace geoloc::dataset
