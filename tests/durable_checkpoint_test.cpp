// Kill-and-resume: the executor's checkpoint/resume contract is that a
// campaign interrupted at ANY round boundary and resumed produces a
// CampaignReport byte-identical (encode_report) to an uninterrupted run —
// under calm and stormy weather, at 1 and 8 worker threads, through
// chained kills, corrupt checkpoints and foreign checkpoints. The
// interruption mechanism is CheckpointPolicy::stop_after_rounds, the
// deterministic stand-in for `kill -9`: each "process" is a fresh Platform
// and executor, with only the checkpoint file carrying state across.
#include "atlas/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "atlas/executor.h"
#include "scenario/presets.h"
#include "test_scenario.h"
#include "util/durable.h"
#include "util/parallel.h"

namespace geoloc::atlas {
namespace {

namespace fs = std::filesystem;
using geoloc::testing::small_scenario;

/// Run fn with the pool sized to `threads`, restoring the default after.
template <typename Fn>
auto at_threads(unsigned threads, Fn&& fn) {
  util::set_thread_count(threads);
  auto result = fn();
  util::set_thread_count(0);
  return result;
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  CheckpointResumeTest() : scenario_(small_scenario()) {}

  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("geoloc-ckpt-" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ckpt_path_ = (dir_ / "campaign.ckpt").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Small batches force many round boundaries out of a small mesh; short
  /// backoffs keep the simulated campaign brief.
  [[nodiscard]] ExecutorConfig base_config() const {
    ExecutorConfig cfg;
    cfg.scheduler.batch_size = 8;
    cfg.scheduler.round_overhead_s = 60.0;
    cfg.retry.initial_backoff_s = 30.0;
    return cfg;
  }

  [[nodiscard]] std::vector<MeasurementRequest> requests() const {
    std::vector<MeasurementRequest> reqs;
    const std::span<const sim::HostId> vps{scenario_.vps().data() + 40, 4};
    const std::span<const sim::HostId> targets{scenario_.targets().data(), 10};
    for (sim::HostId vp : vps) {
      for (sim::HostId target : targets) {
        reqs.push_back({vp, target, MeasurementKind::Ping, 3});
      }
    }
    return reqs;
  }

  [[nodiscard]] std::span<const sim::HostId> spares() const {
    return {scenario_.vps().data() + 300, 6};
  }

  /// One uninterrupted run on a fresh platform; no checkpointing at all.
  [[nodiscard]] CampaignReport reference_run(const FaultModel* faults) const {
    Platform platform(scenario_.world(), scenario_.latency());
    if (faults) platform.set_fault_model(faults);
    return CampaignExecutor(platform, base_config())
        .execute(requests(), spares());
  }

  /// One "process": fresh platform + executor, checkpointing to
  /// ckpt_path_, stopping after `stop_after_rounds` total rounds (0 runs
  /// to completion).
  [[nodiscard]] CampaignReport slice(const FaultModel* faults,
                                     std::uint64_t stop_after_rounds) const {
    Platform platform(scenario_.world(), scenario_.latency());
    if (faults) platform.set_fault_model(faults);
    ExecutorConfig cfg = base_config();
    cfg.checkpoint.path = ckpt_path_;
    cfg.checkpoint.stop_after_rounds = stop_after_rounds;
    return CampaignExecutor(platform, cfg).execute(requests(), spares());
  }

  const scenario::Scenario& scenario_;
  fs::path dir_;
  std::string ckpt_path_;
};

TEST_F(CheckpointResumeTest, UninterruptedRunsAreByteIdentical) {
  const auto a = encode_report(reference_run(nullptr));
  const auto b = encode_report(reference_run(nullptr));
  EXPECT_EQ(a, b);
}

TEST_F(CheckpointResumeTest, KillAtEveryEarlyBoundaryResumesByteIdentical) {
  const auto weather = scenario::stormy_weather();
  const FaultModel faults(scenario_.world(), weather);
  const auto reference = encode_report(reference_run(&faults));

  const CampaignReport probe = reference_run(&faults);
  ASSERT_GT(probe.rounds, 5u) << "fixture must span several round boundaries";

  for (const std::uint64_t kill_at : {1u, 2u, 3u, 5u}) {
    fs::remove(ckpt_path_);
    const CampaignReport interrupted = slice(&faults, kill_at);
    ASSERT_TRUE(interrupted.interrupted);
    EXPECT_EQ(interrupted.rounds, kill_at);
    ASSERT_TRUE(fs::exists(ckpt_path_))
        << "an interrupted slice must leave its checkpoint";

    const CampaignReport resumed = slice(&faults, 0);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.completed + resumed.abandoned, resumed.requested);
    EXPECT_EQ(encode_report(resumed), reference)
        << "kill at round " << kill_at << " diverged";
    EXPECT_FALSE(fs::exists(ckpt_path_))
        << "a completed campaign must consume its checkpoint";
  }
}

TEST_F(CheckpointResumeTest, ChainedKillsAcrossThreeProcessesStayExact) {
  const auto weather = scenario::stormy_weather();
  const FaultModel faults(scenario_.world(), weather);
  const auto reference = encode_report(reference_run(&faults));

  // Three successive "processes" each die one round later; the fourth
  // finishes. Every hop rides the checkpoint alone.
  for (const std::uint64_t stop : {1u, 2u, 3u}) {
    const CampaignReport r = slice(&faults, stop);
    ASSERT_TRUE(r.interrupted);
    ASSERT_EQ(r.rounds, stop);
  }
  const CampaignReport final_report = slice(&faults, 0);
  EXPECT_EQ(encode_report(final_report), reference);
}

TEST_F(CheckpointResumeTest, ResumeIsByteIdenticalAtOneAndEightThreads) {
  const auto weather = scenario::stormy_weather();
  const FaultModel faults(scenario_.world(), weather);

  const auto run_killed_then_resumed = [&](unsigned threads) {
    return at_threads(threads, [&] {
      fs::remove(ckpt_path_);
      const CampaignReport interrupted = slice(&faults, 2);
      EXPECT_TRUE(interrupted.interrupted);
      return encode_report(slice(&faults, 0));
    });
  };
  const auto serial = run_killed_then_resumed(1);
  const auto threaded = run_killed_then_resumed(8);
  const auto reference =
      at_threads(1, [&] { return encode_report(reference_run(&faults)); });
  EXPECT_EQ(serial, reference);
  EXPECT_EQ(threaded, reference);
}

TEST_F(CheckpointResumeTest, CalmCampaignResumesExactlyToo) {
  // Without weather the contract must hold as well (different code path:
  // no rejections/outages, single attempt per measurement).
  const auto reference = encode_report(reference_run(nullptr));
  const CampaignReport interrupted = slice(nullptr, 2);
  ASSERT_TRUE(interrupted.interrupted);
  EXPECT_EQ(encode_report(slice(nullptr, 0)), reference);
}

TEST_F(CheckpointResumeTest, CorruptCheckpointIsQuarantinedAndRunStartsFresh) {
  const auto weather = scenario::stormy_weather();
  const FaultModel faults(scenario_.world(), weather);
  const auto reference = encode_report(reference_run(&faults));

  ASSERT_TRUE(slice(&faults, 2).interrupted);
  // Flip one payload byte of the checkpoint.
  {
    std::fstream f(ckpt_path_, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(util::durable::kFrameHeaderBytes + 4));
    char b = 0;
    f.read(&b, 1);
    f.seekp(-1, std::ios::cur);
    b = static_cast<char>(b ^ 0x10);
    f.write(&b, 1);
  }

  const CampaignReport restarted = slice(&faults, 0);
  EXPECT_EQ(encode_report(restarted), reference)
      << "a corrupt checkpoint must mean a clean fresh start";
  EXPECT_TRUE(
      fs::exists(util::durable::quarantine_path_for(ckpt_path_)));
  EXPECT_FALSE(fs::exists(ckpt_path_));
}

TEST_F(CheckpointResumeTest, ForeignCampaignCheckpointIsIgnored) {
  const auto weather = scenario::stormy_weather();
  const FaultModel faults(scenario_.world(), weather);
  const auto reference = encode_report(reference_run(&faults));

  // Leave a checkpoint of a DIFFERENT campaign (one fewer request) at the
  // same path: the fingerprint must reject it and the run start fresh.
  {
    Platform platform(scenario_.world(), scenario_.latency());
    platform.set_fault_model(&faults);
    ExecutorConfig cfg = base_config();
    cfg.checkpoint.path = ckpt_path_;
    cfg.checkpoint.stop_after_rounds = 1;
    auto reqs = requests();
    reqs.pop_back();
    ASSERT_TRUE(
        CampaignExecutor(platform, cfg).execute(reqs, spares()).interrupted);
  }
  EXPECT_EQ(encode_report(slice(&faults, 0)), reference);
}

TEST_F(CheckpointResumeTest, ResumeCanBeDisabled) {
  const auto weather = scenario::stormy_weather();
  const FaultModel faults(scenario_.world(), weather);
  const auto reference = encode_report(reference_run(&faults));

  ASSERT_TRUE(slice(&faults, 3).interrupted);
  Platform platform(scenario_.world(), scenario_.latency());
  platform.set_fault_model(&faults);
  ExecutorConfig cfg = base_config();
  cfg.checkpoint.path = ckpt_path_;
  cfg.checkpoint.resume = false;
  const CampaignReport fresh =
      CampaignExecutor(platform, cfg).execute(requests(), spares());
  EXPECT_EQ(encode_report(fresh), reference)
      << "resume=false must replay the whole campaign from scratch";
}

TEST_F(CheckpointResumeTest, CheckpointDirEnvDerivesPerCampaignFiles) {
  const auto weather = scenario::stormy_weather();
  const FaultModel faults(scenario_.world(), weather);
  const auto reference = encode_report(reference_run(&faults));

  const std::string ckpt_dir = (dir_ / "ckpts").string();
  ASSERT_EQ(setenv("GEOLOC_CHECKPOINT_DIR", ckpt_dir.c_str(), 1), 0);
  ASSERT_EQ(setenv("GEOLOC_CHECKPOINT_EVERY", "2", 1), 0);

  const auto env_slice = [&](std::uint64_t stop) {
    Platform platform(scenario_.world(), scenario_.latency());
    platform.set_fault_model(&faults);
    ExecutorConfig cfg = base_config();  // no explicit path: env drives it
    cfg.checkpoint.stop_after_rounds = stop;
    return CampaignExecutor(platform, cfg).execute(requests(), spares());
  };

  ASSERT_TRUE(env_slice(2).interrupted);
  // The derived file is keyed by the campaign fingerprint.
  bool found = false;
  for (const auto& entry : fs::directory_iterator(ckpt_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("campaign-", 0) == 0 &&
        name.size() > std::string("campaign-.ckpt").size()) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "expected a campaign-<fingerprint>.ckpt file";

  const CampaignReport resumed = env_slice(0);
  EXPECT_EQ(encode_report(resumed), reference);
  EXPECT_TRUE(fs::is_empty(ckpt_dir))
      << "completion must consume the derived checkpoint";

  ASSERT_EQ(unsetenv("GEOLOC_CHECKPOINT_DIR"), 0);
  ASSERT_EQ(unsetenv("GEOLOC_CHECKPOINT_EVERY"), 0);
}

TEST_F(CheckpointResumeTest, ReportCodecRoundtripsAndRejectsTruncation) {
  const CampaignReport original = reference_run(nullptr);
  const std::vector<std::byte> bytes = encode_report(original);
  CampaignReport decoded;
  ASSERT_TRUE(decode_report(bytes, &decoded));
  EXPECT_EQ(encode_report(decoded), bytes);
  EXPECT_EQ(decoded.completed, original.completed);
  EXPECT_EQ(decoded.results.size(), original.results.size());

  for (const std::size_t cut : {bytes.size() - 1, bytes.size() / 2,
                                std::size_t{8}, std::size_t{0}}) {
    CampaignReport r;
    EXPECT_FALSE(
        decode_report(std::span<const std::byte>(bytes).first(cut), &r))
        << "truncation to " << cut << " bytes must be rejected";
  }
}

TEST_F(CheckpointResumeTest, FingerprintSeparatesCampaignsAndConfigs) {
  const ExecutorConfig cfg = base_config();
  Platform platform(scenario_.world(), scenario_.latency());
  const auto reqs = requests();
  const std::uint64_t base =
      campaign_fingerprint(reqs, spares(), cfg, platform);
  EXPECT_EQ(base, campaign_fingerprint(reqs, spares(), cfg, platform))
      << "the fingerprint must be stable";

  auto fewer = reqs;
  fewer.pop_back();
  EXPECT_NE(base, campaign_fingerprint(fewer, spares(), cfg, platform));

  ExecutorConfig other_retry = cfg;
  other_retry.retry.max_attempts += 1;
  EXPECT_NE(base, campaign_fingerprint(reqs, spares(), other_retry, platform));

  // The checkpoint policy itself must NOT change the identity — resuming
  // with a different cadence or stop point is the designed use.
  ExecutorConfig other_ckpt = cfg;
  other_ckpt.checkpoint.every_rounds = 5;
  other_ckpt.checkpoint.stop_after_rounds = 3;
  EXPECT_EQ(base, campaign_fingerprint(reqs, spares(), other_ckpt, platform));
}

}  // namespace
}  // namespace geoloc::atlas
