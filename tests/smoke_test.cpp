#include <gtest/gtest.h>

TEST(Smoke, BuildsAndRuns) { SUCCEED(); }
