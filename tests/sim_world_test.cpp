#include "sim/world.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "geo/geodesy.h"
#include "sim/city.h"

namespace geoloc::sim {
namespace {

TEST(Gazetteer, HasAllContinentsAndSaneCoordinates) {
  std::set<Continent> continents;
  for (const CityRecord& c : gazetteer()) {
    continents.insert(c.continent);
    EXPECT_TRUE((geo::GeoPoint{c.lat_deg, c.lon_deg}).valid()) << c.name;
    EXPECT_GT(c.population_k, 0.0) << c.name;
    EXPECT_EQ(c.country.size(), 2u) << c.name;
  }
  EXPECT_EQ(continents.size(), 6u);
  EXPECT_GE(gazetteer().size(), 250u);
}

TEST(Gazetteer, SpotCheckCoordinates) {
  // Paris must exist and be in Europe at the expected coordinates.
  bool found = false;
  for (const CityRecord& c : gazetteer()) {
    if (c.name == "Paris") {
      found = true;
      EXPECT_EQ(c.continent, Continent::EU);
      EXPECT_NEAR(c.lat_deg, 48.86, 0.1);
      EXPECT_NEAR(c.lon_deg, 2.35, 0.1);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Continent, NamesRoundTrip) {
  EXPECT_EQ(to_string(Continent::EU), "EU");
  EXPECT_EQ(to_string(Continent::SA), "SA");
  EXPECT_EQ(all_continents().size(), 6u);
}

class WorldTest : public ::testing::Test {
 protected:
  World world_;  // default config
};

TEST_F(WorldTest, PlacesIncludeCitiesAndSatellites) {
  EXPECT_GT(world_.places().size(), world_.cities().size());
  std::size_t satellites = 0;
  for (const Place& p : world_.places()) {
    if (p.satellite) {
      ++satellites;
      const Place& parent = world_.place(p.parent);
      EXPECT_FALSE(parent.satellite);
      const double d = geo::distance_km(p.location, parent.location);
      EXPECT_GE(d, world_.config().satellite_min_km - 1.0);
      EXPECT_LE(d, world_.config().satellite_max_km + 1.0);
      EXPECT_LT(p.population_k, parent.population_k);
    } else {
      EXPECT_EQ(world_.place(p.parent).name, p.name);  // parent is self
    }
  }
  EXPECT_GT(satellites, 100u);
}

TEST_F(WorldTest, SameSeedSameWorld) {
  World other_;  // same default seed
  ASSERT_EQ(world_.places().size(), other_.places().size());
  for (std::size_t i = 0; i < world_.places().size(); ++i) {
    EXPECT_EQ(world_.places()[i].location, other_.places()[i].location);
  }
}

TEST_F(WorldTest, DifferentSeedDifferentSatellites) {
  WorldConfig cfg;
  cfg.seed = 999;
  World other(cfg);
  bool any_difference =
      other.places().size() != world_.places().size();
  for (std::size_t i = 0;
       !any_difference && i < std::min(other.places().size(),
                                       world_.places().size());
       ++i) {
    any_difference = !(other.places()[i].location ==
                       world_.places()[i].location);
  }
  EXPECT_TRUE(any_difference);
}

TEST_F(WorldTest, CreateAsAssignsUniqueAsns) {
  const net::Asn a = world_.create_as(AsCategory::Content, 0);
  const net::Asn b = world_.create_as(AsCategory::Access, 1);
  EXPECT_NE(a.value, b.value);
  EXPECT_EQ(world_.as_info(a).category, AsCategory::Content);
  EXPECT_EQ(world_.as_info(b).sector, 1);
  EXPECT_THROW(world_.as_info(net::Asn{1}), std::out_of_range);
}

TEST_F(WorldTest, SitePrefixesAreUniqueSlash24sOfTheAs) {
  const net::Asn a = world_.create_as(AsCategory::Content, 0);
  std::set<std::uint32_t> networks;
  for (int i = 0; i < 300; ++i) {  // crosses a /16 boundary (256 sites)
    const net::Prefix p = world_.allocate_site_prefix(a);
    EXPECT_EQ(p.length(), 24);
    EXPECT_TRUE(networks.insert(p.network().value()).second);
    const auto origin = world_.bgp_lookup(p.address_at(7));
    ASSERT_TRUE(origin.has_value());
    EXPECT_EQ(origin->second.value, a.value);
  }
}

TEST_F(WorldTest, BgpMoreSpecificsExist) {
  const net::Asn a = world_.create_as(AsCategory::Content, 0);
  int more_specifics = 0;
  for (int i = 0; i < 200; ++i) {
    const net::Prefix p = world_.allocate_site_prefix(a);
    const auto origin = world_.bgp_lookup(p.address_at(1));
    ASSERT_TRUE(origin.has_value());
    if (origin->first.length() == 24) ++more_specifics;
  }
  // ~30% of sites announce their /24 (config default).
  EXPECT_GT(more_specifics, 30);
  EXPECT_LT(more_specifics, 110);
}

TEST_F(WorldTest, AddHostAssignsIdsAndIndexes) {
  Host h;
  h.addr = net::IPv4Address{1, 2, 3, 4};
  h.kind = HostKind::Probe;
  h.true_location = geo::GeoPoint{10.0, 20.0};
  h.reported_location = h.true_location;
  const HostId id = world_.add_host(h);
  EXPECT_EQ(world_.host(id).id, id);
  EXPECT_EQ(world_.find_by_addr(net::IPv4Address{1, 2, 3, 4}), id);
  EXPECT_FALSE(world_.find_by_addr(net::IPv4Address{9, 9, 9, 9}).has_value());
}

TEST_F(WorldTest, MisgeolocateKeepsTrueLocation) {
  Host h;
  h.addr = net::IPv4Address{1, 2, 3, 5};
  h.true_location = geo::GeoPoint{10.0, 20.0};
  h.reported_location = h.true_location;
  const HostId id = world_.add_host(h);
  world_.misgeolocate(id, geo::GeoPoint{-30.0, 50.0});
  EXPECT_TRUE(world_.host(id).misgeolocated);
  EXPECT_EQ(world_.host(id).true_location, (geo::GeoPoint{10.0, 20.0}));
  EXPECT_EQ(world_.host(id).reported_location, (geo::GeoPoint{-30.0, 50.0}));
}

TEST_F(WorldTest, RouterOfIsIdempotentAndPlaced) {
  const HostId r1 = world_.router_of(3);
  const HostId r2 = world_.router_of(3);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(world_.host(r1).kind, HostKind::Router);
  EXPECT_EQ(world_.host(r1).place, 3u);
  const World& const_world = world_;
  EXPECT_EQ(const_world.router_of(3), r1);
}

TEST_F(WorldTest, EveryRealCityHasARouterSatellitesDoNot) {
  const World& const_world = world_;
  for (PlaceId city : world_.cities()) {
    EXPECT_NE(const_world.router_of(city), kInvalidHost);
  }
  // Satellite towns get routers only when hosts move in.
  for (PlaceId p = 0; p < world_.places().size(); ++p) {
    if (world_.place(p).satellite) {
      EXPECT_EQ(const_world.router_of(p), kInvalidHost);
      break;
    }
  }
}

TEST_F(WorldTest, SamplePlaceRespectsContinent) {
  auto gen = world_.rng().fork("test").gen();
  for (int i = 0; i < 200; ++i) {
    const PlaceId p = world_.sample_place(Continent::AF, 0.5, gen);
    EXPECT_EQ(world_.place(p).continent, Continent::AF);
  }
}

TEST_F(WorldTest, SampleLocationStaysNearPlace) {
  auto gen = world_.rng().fork("test2").gen();
  const PlaceId place = world_.cities()[0];
  for (int i = 0; i < 100; ++i) {
    const geo::GeoPoint p = world_.sample_location(place, 5.0, gen);
    EXPECT_LT(geo::distance_km(p, world_.place(place).location), 120.0);
  }
}

TEST_F(WorldTest, HotspotsAreDeterministicAndNearCentre) {
  const PlaceId place = world_.cities()[1];
  const int n = world_.hotspot_count(place);
  EXPECT_GE(n, 3);
  for (int k = 0; k < n; ++k) {
    const geo::GeoPoint h1 = world_.hotspot(place, k);
    const geo::GeoPoint h2 = world_.hotspot(place, k);
    EXPECT_EQ(h1, h2);
    EXPECT_LT(geo::distance_km(h1, world_.place(place).location), 80.0);
  }
  EXPECT_EQ(world_.hotspot(place, 0), world_.place(place).location);
}

TEST_F(WorldTest, UrbanSamplingConcentratesAtHotspots) {
  auto gen = world_.rng().fork("urban").gen();
  const PlaceId place = world_.cities()[2];
  int near_hotspot = 0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    const geo::GeoPoint p =
        world_.sample_urban_location(place, 1.0, 0.5, 10.0, gen);
    for (int k = 0; k < world_.hotspot_count(place); ++k) {
      if (geo::distance_km(p, world_.hotspot(place, k)) < 2.0) {
        ++near_hotspot;
        break;
      }
    }
  }
  EXPECT_GT(near_hotspot, trials / 2);
}

TEST_F(WorldTest, AccessPenaltyIsPerParentCity) {
  ASSERT_FALSE(world_.poorly_connected_cities().empty());
  const PlaceId poor = world_.poorly_connected_cities()[0];
  EXPECT_GT(world_.access_penalty_ms(poor),
            world_.config().access_penalty_floor_ms - 1e-9);
  // Find a satellite of the poor city: it inherits the penalty.
  for (const Place& p : world_.places()) {
    if (p.satellite && p.parent == poor) {
      const auto id = static_cast<PlaceId>(&p - world_.places().data());
      EXPECT_DOUBLE_EQ(world_.access_penalty_ms(id),
                       world_.access_penalty_ms(poor));
      break;
    }
  }
}

TEST_F(WorldTest, AsCategoryAndSectorTables) {
  EXPECT_EQ(all_as_categories().size(), 6u);
  EXPECT_EQ(as_sector_names().size(), 16u);
  EXPECT_EQ(to_string(AsCategory::TransitAccess), "Transit/Access");
  EXPECT_EQ(as_sector_names()[0], "Computer and Information Technology");
}

}  // namespace
}  // namespace geoloc::sim
