// The churn model's contract: deterministic replay (the longitudinal
// driver re-derives the world on resume instead of persisting it), rate
// knobs that do what they say, VP pool bookkeeping, and drift that moves
// reported locations while the ground truth stays put.
#include "sim/churn.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "geo/geodesy.h"
#include "scenario/presets.h"
#include "scenario/scenario.h"

namespace geoloc::sim {
namespace {

scenario::Scenario fresh_scenario(std::uint64_t seed = 42) {
  auto cfg = scenario::small_config(seed);
  cfg.cache_dir = "";
  return scenario::Scenario(cfg);
}

/// World state digest the replay test compares: every target's true and
/// reported location plus responsiveness.
std::vector<double> world_digest(const scenario::Scenario& s) {
  std::vector<double> out;
  for (const Host& h : s.world().hosts()) {
    out.push_back(h.true_location.lat_deg);
    out.push_back(h.true_location.lon_deg);
    out.push_back(h.reported_location.lat_deg);
    out.push_back(h.reported_location.lon_deg);
    out.push_back(h.responsive ? 1.0 : 0.0);
  }
  return out;
}

TEST(ChurnModel, ReplayReproducesWorldAndSummaries) {
  ChurnConfig cc;
  cc.prefix_reassignment_rate = 0.08;
  cc.vp_decommission_rate = 0.05;
  cc.vp_addition_rate = 0.05;
  cc.drift_onset_rate = 0.05;

  auto s1 = fresh_scenario();
  auto s2 = fresh_scenario();
  ChurnModel m1(s1.world(), s1.targets(), s1.vps(), cc);
  ChurnModel m2(s2.world(), s2.targets(), s2.vps(), cc);

  for (std::uint64_t e = 1; e <= 4; ++e) {
    const EpochChurnSummary a = m1.advance(e);
    const EpochChurnSummary b = m2.advance(e);
    EXPECT_EQ(a.prefixes_reassigned, b.prefixes_reassigned) << "epoch " << e;
    EXPECT_EQ(a.hosts_relocated, b.hosts_relocated);
    EXPECT_EQ(a.vps_decommissioned, b.vps_decommissioned);
    EXPECT_EQ(a.vps_added, b.vps_added);
    EXPECT_EQ(a.vps_drifting, b.vps_drifting);
    ASSERT_EQ(a.moved_prefixes.size(), b.moved_prefixes.size());
    for (std::size_t i = 0; i < a.moved_prefixes.size(); ++i) {
      EXPECT_EQ(a.moved_prefixes[i], b.moved_prefixes[i]);
    }
  }
  EXPECT_EQ(world_digest(s1), world_digest(s2));
  ASSERT_EQ(m1.active_vps().size(), m2.active_vps().size());
  EXPECT_TRUE(std::equal(m1.active_vps().begin(), m1.active_vps().end(),
                         m2.active_vps().begin()));
}

TEST(ChurnModel, MovedPrefixesAreSortedAndFromTheUniverse) {
  ChurnConfig cc;
  cc.prefix_reassignment_rate = 0.15;
  auto s = fresh_scenario();
  ChurnModel m(s.world(), s.targets(), s.vps(), cc);
  const auto universe = m.prefix_universe();
  ASSERT_FALSE(universe.empty());
  EXPECT_TRUE(std::is_sorted(universe.begin(), universe.end()));

  std::size_t total_moved = 0;
  for (std::uint64_t e = 1; e <= 3; ++e) {
    const EpochChurnSummary sum = m.advance(e);
    EXPECT_TRUE(std::is_sorted(sum.moved_prefixes.begin(),
                               sum.moved_prefixes.end()));
    for (const net::Prefix& p : sum.moved_prefixes) {
      EXPECT_TRUE(std::binary_search(universe.begin(), universe.end(), p));
    }
    total_moved += sum.moved_prefixes.size();
  }
  // 15% onset over three epochs (plus waves) must move something.
  EXPECT_GT(total_moved, 0u);
}

TEST(ChurnModel, ReassignmentMovesEveryHostOfThePrefixTogether) {
  ChurnConfig cc;
  cc.prefix_reassignment_rate = 0.3;
  cc.host_relocation_rate = 0.0;  // isolate the prefix process
  auto s = fresh_scenario();
  ChurnModel m(s.world(), s.targets(), s.vps(), cc);
  const EpochChurnSummary sum = m.advance(1);
  ASSERT_FALSE(sum.moved_prefixes.empty());
  for (const net::Prefix& p : sum.moved_prefixes) {
    // All hosts inside a moved /24 now share one place (the new tenant's
    // city) — anchor and representatives moved as a block.
    bool seen = false;
    PlaceId place = 0;
    for (const Host& h : s.world().hosts()) {
      if (!p.contains(h.addr) || h.kind == HostKind::Router) continue;
      if (!seen) {
        seen = true;
        place = h.place;
      } else {
        EXPECT_EQ(h.place, place) << p.network().value();
      }
    }
  }
}

TEST(ChurnModel, DecommissionShrinksPoolAndSilencesHosts) {
  ChurnConfig cc;
  cc.vp_decommission_rate = 0.25;
  cc.vp_addition_rate = 0.0;
  auto s = fresh_scenario();
  ChurnModel m(s.world(), s.targets(), s.vps(), cc);
  const std::vector<HostId> pool_before(m.active_vps().begin(),
                                        m.active_vps().end());
  const EpochChurnSummary sum = m.advance(1);
  EXPECT_GT(sum.vps_decommissioned, 0u);
  EXPECT_EQ(m.active_vps().size(),
            pool_before.size() - sum.vps_decommissioned);
  // Decommissioned VPs (probes *and* anchors) stopped answering for good.
  std::size_t silent = 0;
  for (const HostId vp : pool_before) {
    if (!s.world().host(vp).responsive) ++silent;
  }
  EXPECT_GE(silent, sum.vps_decommissioned);
}

TEST(ChurnModel, AdditionsJoinThePoolAsLiveProbes) {
  ChurnConfig cc;
  cc.vp_decommission_rate = 0.0;
  cc.vp_addition_rate = 0.1;
  auto s = fresh_scenario();
  const std::size_t hosts_before = s.world().hosts().size();
  ChurnModel m(s.world(), s.targets(), s.vps(), cc);
  const std::size_t pool_before = m.active_vps().size();
  const EpochChurnSummary sum = m.advance(1);
  EXPECT_GT(sum.vps_added, 0u);
  EXPECT_EQ(m.active_vps().size(), pool_before + sum.vps_added);
  EXPECT_GT(s.world().hosts().size(), hosts_before);
  for (std::size_t i = pool_before; i < m.active_vps().size(); ++i) {
    const Host& h = s.world().host(m.active_vps()[i]);
    EXPECT_EQ(h.kind, HostKind::Probe);
    EXPECT_TRUE(h.responsive);
    EXPECT_TRUE(s.world().bgp_lookup(h.addr).has_value());
  }
}

TEST(ChurnModel, DriftMovesReportedLocationOnly) {
  ChurnConfig cc;
  cc.prefix_reassignment_rate = 0.0;
  cc.host_relocation_rate = 0.0;
  cc.vp_decommission_rate = 0.0;
  cc.vp_addition_rate = 0.0;
  cc.drift_onset_rate = 1.0;  // everyone starts drifting at epoch 1
  cc.drift_step_km = 25.0;
  auto s = fresh_scenario();
  ChurnModel m(s.world(), s.targets(), s.vps(), cc);

  std::vector<geo::GeoPoint> true_before;
  for (const HostId vp : m.active_vps()) {
    true_before.push_back(s.world().host(vp).true_location);
  }
  const EpochChurnSummary e1 = m.advance(1);
  EXPECT_EQ(e1.vps_drifting, m.active_vps().size());
  for (std::size_t i = 0; i < m.active_vps().size(); ++i) {
    const Host& h = s.world().host(m.active_vps()[i]);
    EXPECT_NEAR(geo::distance_km(h.true_location, true_before[i]), 0.0, 1e-9);
    EXPECT_NEAR(geo::distance_km(h.reported_location, h.true_location), 25.0,
                1.0);
  }
  // Drift accumulates along the per-VP bearing: two epochs ~ two steps.
  (void)m.advance(2);
  const Host& h = s.world().host(m.active_vps()[0]);
  EXPECT_NEAR(geo::distance_km(h.reported_location, h.true_location), 50.0,
              2.0);
}

TEST(ChurnConfigTest, EnvOverlayReadsPermilleKnobs) {
  ::setenv("GEOLOC_CHURN_PREFIX_PM", "125", 1);
  ::setenv("GEOLOC_CHURN_DRIFT_KM", "40", 1);
  const ChurnConfig c = ChurnConfig::from_env();
  ::unsetenv("GEOLOC_CHURN_PREFIX_PM");
  ::unsetenv("GEOLOC_CHURN_DRIFT_KM");
  EXPECT_DOUBLE_EQ(c.prefix_reassignment_rate, 0.125);
  EXPECT_DOUBLE_EQ(c.drift_step_km, 40.0);
  // Untouched knobs keep their defaults.
  EXPECT_DOUBLE_EQ(c.wave_fraction, ChurnConfig{}.wave_fraction);
}

}  // namespace
}  // namespace geoloc::sim
