// The metrics registry: striped counters, gauges, fixed-bucket histograms,
// registry identity, and the Prometheus / JSON-lines dumps.
//
// Series names here are prefixed "obstest." — the registry is process-wide
// and shared with the instrumented library code running in this binary.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/parallel.h"

namespace geoloc::obs {
namespace {

TEST(ObsCounter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, StripedAddsFromManyThreads) {
  Counter c;
  util::set_thread_count(8);
  util::parallel_for(10'000, [&](std::size_t) { c.add(); }, /*grain=*/1);
  util::set_thread_count(0);
  EXPECT_EQ(c.value(), 10'000u);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(ObsHistogram, BucketPlacementAndSnapshot) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram h{bounds};
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper bound)
  h.observe(5.0);    // <= 10
  h.observe(100.0);  // <= 100
  h.observe(1e6);    // +Inf bucket
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.bounds.size(), 3u);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.total, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST(ObsHistogram, ConcurrentObservationsAllLand) {
  Histogram h{default_latency_buckets_ms()};
  util::set_thread_count(8);
  util::parallel_for(
      5'000, [&](std::size_t i) { h.observe(static_cast<double>(i % 97)); },
      /*grain=*/1);
  util::set_thread_count(0);
  EXPECT_EQ(h.snapshot().total, 5'000u);
}

TEST(ObsRegistry, SameNameSameObject) {
  auto& reg = Registry::instance();
  Counter& a = reg.counter("obstest.registry.same");
  Counter& b = reg.counter("obstest.registry.same");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("obstest.registry.same");  // separate namespace
  Gauge& g2 = reg.gauge("obstest.registry.same");
  EXPECT_EQ(&g1, &g2);
  const double bounds[] = {1.0, 2.0};
  Histogram& h1 = reg.histogram("obstest.registry.hist", bounds);
  Histogram& h2 = reg.histogram("obstest.registry.hist");  // bounds ignored
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(ObsRegistry, PrometheusDumpShape) {
  auto& reg = Registry::instance();
  reg.counter("obstest.prom.counter").add(3);
  reg.gauge("obstest.prom.gauge").set(-4);
  const double bounds[] = {1.0, 10.0};
  Histogram& h = reg.histogram("obstest.prom.hist", bounds);
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);

  const std::string dump = reg.dump_prometheus();
  EXPECT_NE(dump.find("# TYPE geoloc_obstest_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(dump.find("geoloc_obstest_prom_gauge -4"), std::string::npos);
  // Histogram buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(dump.find("geoloc_obstest_prom_hist_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(dump.find("geoloc_obstest_prom_hist_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(dump.find("geoloc_obstest_prom_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(dump.find("geoloc_obstest_prom_hist_count 3"), std::string::npos);
}

TEST(ObsRegistry, JsonLinesDumpIsNameSortedAndTagged) {
  auto& reg = Registry::instance();
  reg.counter("obstest.json.zz").add(1);
  reg.counter("obstest.json.aa").add(2);
  const std::string dump = reg.dump_json_lines("tagged-run");
  const auto aa = dump.find("\"name\":\"obstest.json.aa\",\"value\":2");
  const auto zz = dump.find("\"name\":\"obstest.json.zz\",\"value\":1");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);  // std::map iteration: name-sorted, deterministic
  EXPECT_NE(dump.find("\"bench\":\"tagged-run\""), std::string::npos);
  // Every line is one JSON object.
  std::istringstream is(dump);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(ObsRegistry, ResetKeepsHandlesValid) {
  auto& reg = Registry::instance();
  Counter& c = reg.counter("obstest.reset.counter");
  c.add(5);
  EXPECT_EQ(c.value(), 5u);
  reg.reset_for_test();
  EXPECT_EQ(c.value(), 0u);
  c.add();  // the cached reference survives the reset
  EXPECT_EQ(reg.counter("obstest.reset.counter").value(), 1u);
}

TEST(ObsRegistry, FlushWritesJsonLinesToFile) {
  const std::string path = ::testing::TempDir() + "obstest-metrics.jsonl";
  std::remove(path.c_str());
  Registry::instance().counter("obstest.flush.counter").add(9);
  ASSERT_TRUE(flush_metrics_json("flush-test", path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"name\":\"obstest.flush.counter\""),
            std::string::npos);
  EXPECT_NE(contents.find("\"bench\":\"flush-test\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsRegistry, FlushWithoutPathIsNoOp) {
  // No explicit path and (in the test environment) no GEOLOC_METRICS_JSON.
  if (std::getenv("GEOLOC_METRICS_JSON") == nullptr) {
    EXPECT_FALSE(flush_metrics_json());
  }
}

}  // namespace
}  // namespace geoloc::obs
