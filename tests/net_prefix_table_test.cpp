#include "net/prefix_table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace geoloc::net {
namespace {

IPv4Address ip(const char* s) { return *IPv4Address::parse(s); }
Prefix pfx(const char* s) { return *Prefix::parse(s); }

TEST(PrefixTable, EmptyLookupMisses) {
  PrefixTable<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.lookup(ip("1.2.3.4")).has_value());
}

TEST(PrefixTable, ExactMatch) {
  PrefixTable<int> t;
  t.insert(pfx("10.0.0.0/8"), 1);
  const auto hit = t.lookup(ip("10.1.2.3"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->second, 1);
  EXPECT_EQ(hit->first.to_string(), "10.0.0.0/8");
}

TEST(PrefixTable, LongestPrefixWins) {
  PrefixTable<std::string> t;
  t.insert(pfx("10.0.0.0/8"), "eight");
  t.insert(pfx("10.1.0.0/16"), "sixteen");
  t.insert(pfx("10.1.2.0/24"), "twentyfour");
  EXPECT_EQ(t.lookup(ip("10.1.2.3"))->second, "twentyfour");
  EXPECT_EQ(t.lookup(ip("10.1.9.9"))->second, "sixteen");
  EXPECT_EQ(t.lookup(ip("10.9.9.9"))->second, "eight");
  EXPECT_FALSE(t.lookup(ip("11.0.0.0")).has_value());
}

TEST(PrefixTable, DefaultRouteMatchesEverything) {
  PrefixTable<int> t;
  t.insert(pfx("0.0.0.0/0"), 42);
  EXPECT_EQ(t.lookup(ip("200.100.50.25"))->second, 42);
}

TEST(PrefixTable, HostRoute) {
  PrefixTable<int> t;
  t.insert(pfx("1.2.3.4/32"), 7);
  EXPECT_TRUE(t.lookup(ip("1.2.3.4")).has_value());
  EXPECT_FALSE(t.lookup(ip("1.2.3.5")).has_value());
}

TEST(PrefixTable, InsertOverwrites) {
  PrefixTable<int> t;
  t.insert(pfx("10.0.0.0/8"), 1);
  t.insert(pfx("10.0.0.0/8"), 2);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.lookup(ip("10.0.0.1"))->second, 2);
}

TEST(PrefixTable, FindExactDoesNotLpm) {
  PrefixTable<int> t;
  t.insert(pfx("10.0.0.0/8"), 1);
  EXPECT_NE(t.find_exact(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(t.find_exact(pfx("10.1.0.0/16")), nullptr);
}

TEST(PrefixTable, ForEachVisitsAll) {
  PrefixTable<int> t;
  t.insert(pfx("10.0.0.0/8"), 1);
  t.insert(pfx("192.168.0.0/16"), 2);
  t.insert(pfx("10.1.0.0/16"), 3);
  std::vector<std::string> seen;
  t.for_each([&](const Prefix& p, int) { seen.push_back(p.to_string()); });
  EXPECT_EQ(seen.size(), 3u);
}

TEST(PrefixTable, ManyDisjointPrefixes) {
  PrefixTable<std::uint32_t> t;
  for (std::uint32_t i = 0; i < 500; ++i) {
    t.insert(Prefix{IPv4Address{(i + 256) << 16}, 16}, i);
  }
  EXPECT_EQ(t.size(), 500u);
  for (std::uint32_t i = 0; i < 500; ++i) {
    const auto hit = t.lookup(IPv4Address{((i + 256) << 16) | 0x1234});
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->second, i);
  }
}

}  // namespace
}  // namespace geoloc::net
