#include "dataset/population_grid.h"

#include <gtest/gtest.h>

#include "geo/geodesy.h"
#include "test_scenario.h"

namespace geoloc::dataset {
namespace {

using geoloc::testing::small_scenario;

const PopulationGrid& grid() {
  static const PopulationGrid g(small_scenario().world());
  return g;
}

geo::GeoPoint city_centre(std::string_view name) {
  for (const auto& p : small_scenario().world().places()) {
    if (p.name == name) return p.location;
  }
  ADD_FAILURE() << "city not found: " << name;
  return {};
}

TEST(PopulationGrid, DenseInMetroSparseInOcean) {
  const double paris = grid().density_per_km2(city_centre("Paris"));
  const double ocean = grid().density_per_km2(geo::GeoPoint{-45.0, -140.0});
  EXPECT_GT(paris, 1'000.0);
  EXPECT_LT(ocean, 10.0);
  EXPECT_GT(paris / ocean, 100.0);
}

TEST(PopulationGrid, RuralFloorApplies) {
  const PopulationGridConfig cfg;
  EXPECT_GE(grid().density_per_km2(geo::GeoPoint{-45.0, -140.0}),
            cfg.rural_floor_per_km2);
}

TEST(PopulationGrid, DensityDecaysWithDistanceFromCentre) {
  const geo::GeoPoint centre = city_centre("Paris");
  const double at0 = grid().density_per_km2(centre);
  const double at10 = grid().density_per_km2(geo::destination(centre, 90, 10));
  const double at60 = grid().density_per_km2(geo::destination(centre, 90, 60));
  EXPECT_GT(at0, at10);
  EXPECT_GT(at10, at60);
}

TEST(PopulationGrid, BiggerCitiesDenser) {
  EXPECT_GT(grid().density_per_km2(city_centre("Tokyo")),
            grid().density_per_km2(city_centre("Reykjavik")));
}

TEST(PopulationGrid, SnappingMakesNearbyQueriesAgree) {
  const geo::GeoPoint centre = city_centre("Berlin");
  const geo::GeoPoint nudged{centre.lat_deg + 1e-4, centre.lon_deg + 1e-4};
  EXPECT_DOUBLE_EQ(grid().density_per_km2(centre),
                   grid().density_per_km2(nudged));
}

TEST(PopulationGrid, EveryTargetHasFiniteDensity) {
  const auto& s = small_scenario();
  for (sim::HostId t : s.targets()) {
    const double d =
        grid().density_per_km2(s.world().host(t).true_location);
    EXPECT_TRUE(std::isfinite(d));
    EXPECT_GT(d, 0.0);
  }
}

}  // namespace
}  // namespace geoloc::dataset
