// The trust-but-verify decision rules, and the evidence generators that
// feed them. Engine tests are pure (synthetic disks and pings); generator
// tests pin the adversarial semantics — a lying hint for a misgeolocated
// host must agree with the host's bogus reported location.
#include "fusion/engine.h"

#include <gtest/gtest.h>

#include "fusion/geofeed.h"
#include "geo/constants.h"
#include "geo/geodesy.h"
#include "sim/evidence.h"
#include "test_scenario.h"

namespace geoloc::fusion {
namespace {

const geo::GeoPoint kVienna{48.21, 16.37};
const geo::GeoPoint kParis{48.86, 2.35};
const geo::GeoPoint kSydney{-33.87, 151.21};

EngineConfig test_config() {
  EngineConfig c;
  c.slack_km = 100.0;
  c.verify_k = 4;
  c.min_conclusive = 2;
  return c;
}

TEST(FusionEngine, GeometryAdmitsPointsInsideAllDisksWithSlack) {
  const std::vector<geo::Disk> disks{{kVienna, 500.0}, {kParis, 2500.0}};
  EXPECT_TRUE(geometric_feasible(disks, kVienna, 100.0));
  // Sydney is ~16000 km from Vienna: excluded by the first disk.
  EXPECT_FALSE(geometric_feasible(disks, kSydney, 100.0));
  // A point just past a disk edge survives thanks to slack...
  const geo::GeoPoint near_edge = geo::destination(kVienna, 90.0, 560.0);
  EXPECT_TRUE(geometric_feasible(disks, near_edge, 100.0));
  // ...but not without it.
  EXPECT_FALSE(geometric_feasible(disks, near_edge, 10.0));
}

TEST(FusionEngine, NoDisksMeansNoGeometryToContradict) {
  EXPECT_TRUE(geometric_feasible({}, kSydney, 0.0));
}

/// RTT consistent with the claim: the VP is `km` away and the RTT says
/// "at most `km` + margin".
VerifyPing consistent_ping(const geo::GeoPoint& claim, double bearing,
                           double km, double margin_km = 50.0) {
  VerifyPing p;
  p.vp_location = geo::destination(claim, bearing, km);
  p.rtt_ms = geo::distance_to_min_rtt_ms(km + margin_km);
  return p;
}

TEST(FusionEngine, ConsistentPingsAccept) {
  const auto cfg = test_config();
  const std::vector<VerifyPing> pings{consistent_ping(kVienna, 0.0, 300.0),
                                      consistent_ping(kVienna, 120.0, 500.0),
                                      consistent_ping(kVienna, 240.0, 800.0)};
  int contra = -1;
  EXPECT_EQ(verify_claim(kVienna, pings, cfg, &contra),
            ClaimVerdict::Accepted);
  EXPECT_EQ(contra, 0);
}

TEST(FusionEngine, OneImpossibleRttRejects) {
  const auto cfg = test_config();
  // Two honest-looking pings plus one VP whose RTT proves the target is
  // within 200 km of it — and that VP is 3000 km from the claim.
  VerifyPing impossible;
  impossible.vp_location = geo::destination(kVienna, 45.0, 3000.0);
  impossible.rtt_ms = geo::distance_to_min_rtt_ms(200.0);
  const std::vector<VerifyPing> pings{consistent_ping(kVienna, 0.0, 300.0),
                                      consistent_ping(kVienna, 180.0, 400.0),
                                      impossible};
  int contra = -1;
  EXPECT_EQ(verify_claim(kVienna, pings, cfg, &contra),
            ClaimVerdict::RejectedActive);
  EXPECT_EQ(contra, 1);
}

TEST(FusionEngine, StarvedVerificationIsInconclusiveNeverAccepted) {
  const auto cfg = test_config();
  // Only one of four pings answered (weather): not enough for a verdict.
  std::vector<VerifyPing> pings{consistent_ping(kVienna, 0.0, 300.0)};
  for (int i = 0; i < 3; ++i) {
    VerifyPing lost;
    lost.vp_location = geo::destination(kVienna, 90.0 * i, 400.0);
    pings.push_back(lost);  // rtt_ms = nullopt
  }
  EXPECT_EQ(verify_claim(kVienna, pings, cfg),
            ClaimVerdict::Inconclusive);
}

TEST(FusionEngine, ContradictionOutranksStarvation) {
  const auto cfg = test_config();
  // A single answered ping that disproves the claim: rejection, not
  // inconclusive — a too-small RTT cannot be weather.
  VerifyPing impossible;
  impossible.vp_location = geo::destination(kVienna, 45.0, 5000.0);
  impossible.rtt_ms = geo::distance_to_min_rtt_ms(100.0);
  const std::vector<VerifyPing> pings{impossible};
  EXPECT_EQ(verify_claim(kVienna, pings, cfg),
            ClaimVerdict::RejectedActive);
}

TEST(FusionEngine, SlackAbsorbsLastMileInflation) {
  EngineConfig cfg = test_config();
  VerifyPing p;
  p.vp_location = geo::destination(kVienna, 10.0, 1000.0);
  // The bound lands 60 km short of the VP's distance to the claim.
  p.rtt_ms = geo::distance_to_min_rtt_ms(940.0);
  const std::vector<VerifyPing> pings{p, consistent_ping(kVienna, 200.0, 300.0)};
  cfg.slack_km = 100.0;
  EXPECT_EQ(verify_claim(kVienna, pings, cfg), ClaimVerdict::Accepted);
  cfg.slack_km = 10.0;
  EXPECT_EQ(verify_claim(kVienna, pings, cfg),
            ClaimVerdict::RejectedActive);
}

// -- generators ------------------------------------------------------------

TEST(EvidenceGenerators, HintsAreDeterministicAndCoverageScales) {
  const auto& s = geoloc::testing::small_scenario();
  sim::HintConfig cfg;
  cfg.coverage = 0.5;
  cfg.lie_rate = 0.2;
  const util::RngStream rng(1234);
  const auto a = sim::generate_hints(s.world(), s.targets(), cfg, rng);
  const auto b = sim::generate_hints(s.world(), s.targets(), cfg, rng);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].location.lat_deg, b[i].location.lat_deg);
    EXPECT_EQ(a[i].lie, b[i].lie);
  }
  // Coverage lands near the knob.
  const double frac =
      static_cast<double>(a.size()) / static_cast<double>(s.targets().size());
  EXPECT_GT(frac, 0.3);
  EXPECT_LT(frac, 0.7);

  sim::HintConfig full = cfg;
  full.coverage = 1.0;
  full.lie_rate = 0.0;
  const auto all = sim::generate_hints(s.world(), s.targets(), full, rng);
  EXPECT_EQ(all.size(), s.targets().size());
  for (const auto& h : all) EXPECT_FALSE(h.lie);
}

TEST(EvidenceGenerators, HonestHintsLandNearTheTruth) {
  const auto& s = geoloc::testing::small_scenario();
  sim::HintConfig cfg;
  cfg.coverage = 1.0;
  cfg.lie_rate = 0.0;
  cfg.noise_km = 10.0;
  const auto hints =
      sim::generate_hints(s.world(), s.targets(), cfg, util::RngStream(7));
  for (const auto& h : hints) {
    const auto& host = s.world().host(h.target);
    EXPECT_LT(geo::distance_km(h.location, host.true_location), 200.0);
  }
}

TEST(EvidenceGenerators, LyingHintForMisgeolocatedHostTracksTheBogusLocation) {
  // Sanitised targets exclude misgeolocated hosts, so build the condition
  // directly: a host whose reported location is a continent away from the
  // truth must produce lies that agree with the *reported* one — the
  // convincing-wrong case the fusion engine has to beat.
  sim::World world;
  const net::Asn as = world.create_as(sim::AsCategory::Access, 0);
  const net::Prefix prefix = world.allocate_site_prefix(as);
  sim::Host h;
  h.addr = prefix.address_at(1);
  h.asn = as;
  h.place = world.cities().front();
  h.kind = sim::HostKind::Anchor;
  h.true_location = kVienna;
  h.reported_location = kVienna;
  const sim::HostId id = world.add_host(h);
  world.misgeolocate(id, kSydney);

  sim::HintConfig cfg;
  cfg.coverage = 1.0;
  cfg.lie_rate = 1.0;
  cfg.noise_km = 10.0;
  const std::vector<sim::HostId> targets{id};
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto hints =
        sim::generate_hints(world, targets, cfg, util::RngStream(seed));
    ASSERT_EQ(hints.size(), 1u);
    EXPECT_TRUE(hints[0].lie);
    EXPECT_LT(geo::distance_km(hints[0].location, kSydney), 200.0);
    EXPECT_GT(geo::distance_km(hints[0].location, kVienna), 10'000.0);
  }
}

TEST(EvidenceGenerators, FeedsRoundTripThroughTheStrictParser) {
  const auto& s = geoloc::testing::small_scenario();
  sim::FeedConfig cfg;
  cfg.coverage = 1.0;
  cfg.feed_count = 3;
  const auto feeds = sim::generate_feeds(s.world(), s.targets(), cfg,
                                         util::RngStream(99));
  ASSERT_EQ(feeds.size(), 3u);
  std::size_t total = 0;
  for (const auto& f : feeds) {
    const fusion::GeofeedParseResult parsed = fusion::parse_geofeed(f.text);
    EXPECT_FALSE(parsed.quarantined) << f.source;
    EXPECT_TRUE(parsed.defects.empty()) << f.source;
    EXPECT_EQ(parsed.entries.size(), f.entries.size()) << f.source;
    total += parsed.entries.size();
  }
  EXPECT_EQ(total, s.targets().size());
}

TEST(EvidenceGenerators, AdversarialFeedsLieAtTheConfiguredRate) {
  const auto& s = geoloc::testing::small_scenario();
  sim::FeedConfig cfg;
  cfg.coverage = 1.0;
  cfg.feed_count = 2;
  cfg.adversarial_feeds = 1;
  cfg.adversarial_lie_rate = 1.0;
  cfg.stale_rate = 0.0;
  const auto feeds = sim::generate_feeds(s.world(), s.targets(), cfg,
                                         util::RngStream(99));
  for (const auto& e : feeds[0].entries) {
    EXPECT_EQ(e.truth, sim::FeedEntryTruth::Adversarial);
  }
  for (const auto& e : feeds[1].entries) {
    EXPECT_EQ(e.truth, sim::FeedEntryTruth::Honest);
  }
}

}  // namespace
}  // namespace geoloc::fusion
