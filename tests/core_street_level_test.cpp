#include "core/street_level.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "geo/geodesy.h"
#include "test_scenario.h"
#include "util/stats.h"

namespace geoloc::core {
namespace {

using geoloc::testing::small_scenario;

const StreetLevel& street() {
  static const StreetLevel s(small_scenario());
  return s;
}

TEST(StreetLevel, DefaultSpeedsAreTheStreetLevelPapers) {
  EXPECT_DOUBLE_EQ(street().config().tier1.soi_km_per_ms,
                   geo::kSoiFourNinthsKmPerMs);
  EXPECT_DOUBLE_EQ(street().config().tier1.fallback_soi_km_per_ms,
                   geo::kSoiTwoThirdsKmPerMs);
}

TEST(StreetLevel, ExplicitConfigIsRespected) {
  StreetLevelConfig cfg;
  cfg.tier1.soi_km_per_ms = geo::kSoiTwoThirdsKmPerMs;
  cfg.tier1.fallback_soi_km_per_ms = 1.0;
  const StreetLevel custom(small_scenario(), cfg);
  EXPECT_DOUBLE_EQ(custom.config().tier1.fallback_soi_km_per_ms, 1.0);
}

TEST(StreetLevel, GeolocatesWithBoundedError) {
  const auto& s = small_scenario();
  const StreetLevelResult r = street().geolocate(0);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.estimate.valid());
  EXPECT_LT(eval::error_km(s, 0, r.estimate), 3'000.0);
}

TEST(StreetLevel, CostsAreAccounted) {
  const StreetLevelResult r = street().geolocate(1);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  EXPECT_GT(r.traceroutes, 0u);
  EXPECT_GT(r.tier2.geocode_queries + r.tier3.geocode_queries, 0u);
  EXPECT_GT(r.tier2.sample_points, 0u);
}

TEST(StreetLevel, Tier3UsesFinerSampling) {
  const auto& cfg = street().config();
  EXPECT_LT(cfg.tier3_ring_km, cfg.tier2_ring_km);
  EXPECT_GT(cfg.tier3_points_per_circle, cfg.tier2_points_per_circle);
}

TEST(StreetLevel, LandmarkMeasurementsAreConsistent) {
  for (std::size_t col : {0u, 2u, 4u}) {
    const StreetLevelResult r = street().geolocate(col);
    for (const auto* tier : {&r.tier2, &r.tier3}) {
      for (const LandmarkMeasurement& m : tier->landmarks) {
        EXPECT_LE(m.negative_pairs, m.pair_count);
        EXPECT_LE(m.vps_used, m.pair_count);
        if (m.usable) {
          EXPECT_GE(m.min_d1d2_ms, 0.0);
          EXPECT_GE(m.measured_distance_km, 0.0);
        }
        EXPECT_GE(m.geographic_distance_km, 0.0);
      }
    }
  }
}

TEST(StreetLevel, FinalEstimateIsAChosenLandmarkOrCbg) {
  const auto& s = small_scenario();
  const StreetLevelResult r = street().geolocate(3);
  ASSERT_TRUE(r.ok);
  if (r.fell_back_to_cbg) {
    EXPECT_EQ(r.estimate, r.tier1.estimate);
  } else {
    // The estimate must be one of the measured landmarks' claimed spots.
    bool found = false;
    for (const auto* tier : {&r.tier2, &r.tier3}) {
      for (const LandmarkMeasurement& m : tier->landmarks) {
        found |= m.claimed_location == r.estimate;
      }
    }
    EXPECT_TRUE(found);
  }
  (void)s;
}

TEST(StreetLevel, ChosenLandmarkHasSmallestUsableDelay) {
  const StreetLevelResult r = street().geolocate(5);
  if (r.fell_back_to_cbg || !r.ok) GTEST_SKIP();
  double chosen_delay = -1.0;
  double min_usable = 1e18;
  // tier 3 is preferred; fall back to tier 2 exactly like the pipeline.
  const auto* source = &r.tier3;
  bool any_usable_tier3 = false;
  for (const auto& m : r.tier3.landmarks) any_usable_tier3 |= m.usable;
  if (!any_usable_tier3) source = &r.tier2;
  for (const LandmarkMeasurement& m : source->landmarks) {
    if (!m.usable) continue;
    min_usable = std::min(min_usable, m.min_d1d2_ms);
    if (m.claimed_location == r.estimate) chosen_delay = m.min_d1d2_ms;
  }
  if (chosen_delay >= 0.0) EXPECT_DOUBLE_EQ(chosen_delay, min_usable);
}

TEST(StreetLevel, CbgBaselineIsReasonable) {
  const auto& s = small_scenario();
  std::vector<double> errors;
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const CbgResult r = street().cbg_baseline(col);
    if (r.ok) errors.push_back(eval::error_km(s, col, r.estimate));
  }
  ASSERT_GT(errors.size(), s.targets().size() * 9 / 10);
  EXPECT_LT(util::median(errors), 200.0);
}

TEST(StreetLevel, OracleBeatsThePipeline) {
  // Figure 5a: the closest-landmark oracle lower-bounds the error.
  const auto& s = small_scenario();
  std::vector<double> street_err, oracle_err;
  for (std::size_t col = 0; col < 30; ++col) {
    const auto oracle = street().closest_landmark_oracle(col);
    if (!oracle) continue;
    const StreetLevelResult r = street().geolocate(col);
    if (!r.ok) continue;
    street_err.push_back(eval::error_km(s, col, r.estimate));
    oracle_err.push_back(eval::error_km(s, col, *oracle));
  }
  ASSERT_GT(oracle_err.size(), 10u);
  EXPECT_LT(util::median(oracle_err), util::median(street_err));
}

TEST(StreetLevel, OracleRadiusIsRespected) {
  const auto& s = small_scenario();
  for (std::size_t col = 0; col < 20; ++col) {
    const auto oracle = street().closest_landmark_oracle(col, 50.0);
    if (!oracle) continue;
    EXPECT_LE(eval::error_km(s, col, *oracle), 60.0);
  }
}

TEST(StreetLevel, DeterministicPerTarget) {
  const StreetLevelResult a = street().geolocate(7);
  const StreetLevelResult b = street().geolocate(7);
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.traceroutes, b.traceroutes);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

}  // namespace
}  // namespace geoloc::core
