#include "spatial/admin.h"

#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <set>
#include <string>

#include "geo/geodesy.h"
#include "landmark/mapping_service.h"
#include "test_scenario.h"

namespace geoloc::spatial {
namespace {

const AdminHierarchy& hierarchy() {
  static const AdminHierarchy h =
      AdminHierarchy::build(testing::small_scenario().world(), 0.045);
  return h;
}

/// Brute-force nearest place with the locate() tie rule (lowest PlaceId).
sim::PlaceId nearest_place_scan(const sim::World& world,
                                const geo::GeoPoint& p) {
  sim::PlaceId best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (sim::PlaceId id = 0; id < world.places().size(); ++id) {
    const double d = geo::distance_km(world.place(id).location, p);
    if (d < best_d || (d == best_d && id < best)) {
      best_d = d;
      best = id;
    }
  }
  return best;
}

TEST(SpatialAdmin, CountsMatchTheWorldStructure) {
  const auto& world = testing::small_scenario().world();
  const AdminHierarchy& h = hierarchy();

  std::set<std::string> countries;
  std::size_t cities = 0;
  for (const sim::Place& pl : world.places()) {
    countries.insert(pl.country);
    if (!pl.satellite) ++cities;
  }
  EXPECT_EQ(h.count(AdminLevel::Country), countries.size());
  EXPECT_EQ(h.count(AdminLevel::Region), cities);
  EXPECT_EQ(h.count(AdminLevel::Locality), world.places().size());
  EXPECT_EQ(h.count(AdminLevel::Street), 0u);  // streets are virtual
  EXPECT_EQ(h.areas().size(),
            countries.size() + cities + world.places().size());
}

TEST(SpatialAdmin, ChainsRunCountryRegionLocality) {
  const auto& world = testing::small_scenario().world();
  const AdminHierarchy& h = hierarchy();
  for (sim::PlaceId p = 0; p < world.places().size(); ++p) {
    const AdminId loc = h.locality_of(p);
    const auto chain = h.chain(loc);
    ASSERT_EQ(chain.size(), 3u) << "place " << p;
    EXPECT_EQ(h.area(chain[0]).level, AdminLevel::Country);
    EXPECT_EQ(h.area(chain[1]).level, AdminLevel::Region);
    EXPECT_EQ(h.area(chain[2]).level, AdminLevel::Locality);
    EXPECT_EQ(chain[2], loc);
    // The locality's region is the parent city's region; the region's
    // country matches the place's country string.
    const sim::Place& pl = world.place(p);
    EXPECT_EQ(h.area(chain[1]).place, pl.parent);
    EXPECT_EQ(h.area(chain[0]).name, pl.country);
    EXPECT_EQ(h.area(chain[2]).name, pl.name);
  }
}

TEST(SpatialAdmin, SatellitesShareTheParentCityRegion) {
  const auto& world = testing::small_scenario().world();
  const AdminHierarchy& h = hierarchy();
  bool saw_satellite = false;
  for (sim::PlaceId p = 0; p < world.places().size(); ++p) {
    if (!world.place(p).satellite) continue;
    saw_satellite = true;
    const AdminId sat_region = h.area(h.locality_of(p)).parent;
    const AdminId parent_region =
        h.area(h.locality_of(world.place(p).parent)).parent;
    EXPECT_EQ(sat_region, parent_region) << "place " << p;
  }
  EXPECT_TRUE(saw_satellite);
}

TEST(SpatialAdmin, LocateFindsTheNearestPlace) {
  const auto& world = testing::small_scenario().world();
  const AdminHierarchy& h = hierarchy();
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> lat(-90.0, 90.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);

  std::vector<geo::GeoPoint> pts;
  // Place centres and nearby jitters (the common case) ...
  int n = 0;
  for (const sim::Place& pl : world.places()) {
    if (++n > 30) break;
    pts.push_back(pl.location);
    pts.push_back(geo::destination(pl.location, 37.0, 3.0));
  }
  // ... plus remote points where the expanding search must widen.
  for (int i = 0; i < 30; ++i) pts.push_back({lat(rng), lon(rng)});
  pts.push_back({90.0, 0.0});
  pts.push_back({-90.0, 11.0});
  pts.push_back({-48.9, -123.4});  // Point Nemo: far from everything

  for (const geo::GeoPoint& p : pts) {
    const AdminPath path = h.locate(p);
    const sim::PlaceId want = nearest_place_scan(world, p);
    ASSERT_NE(path.locality, kNoAdmin);
    EXPECT_EQ(h.area(path.locality).place, want)
        << p.lat_deg << "," << p.lon_deg;
    // Path is internally consistent.
    EXPECT_EQ(h.area(path.locality).parent, path.region);
    EXPECT_EQ(h.area(path.region).parent, path.country);
  }
}

TEST(SpatialAdmin, StreetKeyMatchesTheMappingServiceZone) {
  const landmark::MappingService mapping;  // same 0.045-degree zones
  const AdminHierarchy& h = hierarchy();
  std::mt19937 rng(6);
  std::uniform_real_distribution<double> lat(-90.0, 90.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  for (int i = 0; i < 100; ++i) {
    const geo::GeoPoint p{lat(rng), lon(rng)};
    EXPECT_EQ(h.locate(p).street, mapping.zone_of(p));
  }
}

TEST(SpatialAdmin, EmptyHierarchyLocatesToStreetOnly) {
  const AdminHierarchy h;
  const AdminPath path = h.locate({10.0, 20.0});
  EXPECT_EQ(path.country, kNoAdmin);
  EXPECT_EQ(path.region, kNoAdmin);
  EXPECT_EQ(path.locality, kNoAdmin);
  EXPECT_FALSE(path.street.empty());
}

TEST(SpatialAdmin, LevelNamesRoundTrip) {
  EXPECT_EQ(to_string(AdminLevel::Country), "country");
  EXPECT_EQ(to_string(AdminLevel::Region), "region");
  EXPECT_EQ(to_string(AdminLevel::Locality), "locality");
  EXPECT_EQ(to_string(AdminLevel::Street), "street");
}

}  // namespace
}  // namespace geoloc::spatial
