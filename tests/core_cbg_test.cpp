#include "core/cbg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "geo/geodesy.h"
#include "util/rng.h"

namespace geoloc::core {
namespace {

constexpr geo::GeoPoint kParis{48.8566, 2.3522};
constexpr geo::GeoPoint kLyon{45.7640, 4.8357};
constexpr geo::GeoPoint kBerlin{52.5200, 13.4050};

/// SOI-safe synthetic observation: the RTT a VP at `vp` would plausibly
/// measure toward `truth`.
VpObservation observe(const geo::GeoPoint& vp, const geo::GeoPoint& truth,
                      double inflation = 1.2, double extra_ms = 0.5) {
  const double d = geo::distance_km(vp, truth);
  return {vp, geo::distance_to_min_rtt_ms(d) * inflation + extra_ms};
}

TEST(ConstraintDisks, RadiusFollowsSpeed) {
  const VpObservation o{kParis, 10.0};
  const auto disks =
      constraint_disks({&o, 1}, geo::kSoiTwoThirdsKmPerMs, 0);
  ASSERT_EQ(disks.size(), 1u);
  EXPECT_NEAR(disks[0].radius_km, 10.0 / 2.0 * geo::kSoiTwoThirdsKmPerMs,
              1e-9);
}

TEST(ConstraintDisks, BudgetKeepsSmallest) {
  std::vector<VpObservation> obs;
  for (int i = 0; i < 50; ++i) {
    obs.push_back({kParis, 100.0 - i});  // decreasing RTTs
  }
  const auto disks = constraint_disks(obs, geo::kSoiTwoThirdsKmPerMs, 8);
  ASSERT_EQ(disks.size(), 8u);
  for (const auto& d : disks) {
    EXPECT_LE(d.radius_km,
              geo::rtt_to_max_distance_km(58.0, geo::kSoiTwoThirdsKmPerMs));
  }
}

TEST(Cbg, EmptyObservationsFail) {
  EXPECT_FALSE(cbg_geolocate({}).ok);
}

TEST(Cbg, SingleVpEstimatesAtTheVp) {
  const VpObservation o = observe(kParis, kLyon);
  const CbgResult r = cbg_geolocate({&o, 1});
  ASSERT_TRUE(r.ok);
  EXPECT_LT(geo::distance_km(r.estimate, kParis), 20.0);
}

TEST(Cbg, TriangulationBeatsSingleVp) {
  const geo::GeoPoint truth{47.5, 5.0};  // between the three cities
  const std::vector<VpObservation> one{observe(kParis, truth)};
  const std::vector<VpObservation> three{
      observe(kParis, truth), observe(kLyon, truth), observe(kBerlin, truth)};
  const CbgResult r1 = cbg_geolocate(one);
  const CbgResult r3 = cbg_geolocate(three);
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r3.ok);
  EXPECT_LT(geo::distance_km(r3.estimate, truth),
            geo::distance_km(r1.estimate, truth));
}

TEST(Cbg, RegionContainsTruthForSoundObservations) {
  const geo::GeoPoint truth{47.5, 5.0};
  const std::vector<VpObservation> obs{
      observe(kParis, truth), observe(kLyon, truth), observe(kBerlin, truth)};
  const CbgResult r = cbg_geolocate(obs);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(geo::region_contains(r.disks, truth));
}

TEST(Cbg, FallbackSpeedRescuesEmptyIntersection) {
  // At 4/9 c these honest 2/3-c observations may produce disjoint disks;
  // craft RTTs right at the 2/3-c bound so 4/9-c disks cannot reach.
  const geo::GeoPoint truth = geo::midpoint(kParis, kBerlin);
  std::vector<VpObservation> obs;
  for (const auto& vp : {kParis, kBerlin}) {
    const double d = geo::distance_km(vp, truth);
    obs.push_back({vp, geo::distance_to_min_rtt_ms(d) * 1.01});
  }
  CbgConfig strict;
  strict.soi_km_per_ms = geo::kSoiFourNinthsKmPerMs;
  const CbgResult no_fallback = cbg_geolocate(obs, strict);
  EXPECT_FALSE(no_fallback.ok);

  CbgConfig with_fallback = strict;
  with_fallback.fallback_soi_km_per_ms = geo::kSoiTwoThirdsKmPerMs;
  const CbgResult rescued = cbg_geolocate(obs, with_fallback);
  ASSERT_TRUE(rescued.ok);
  EXPECT_TRUE(rescued.used_fallback_soi);
  EXPECT_LT(geo::distance_km(rescued.estimate, truth), 200.0);
}

TEST(Cbg, TighterObservationsShrinkRegion) {
  const geo::GeoPoint truth{47.5, 5.0};
  std::vector<VpObservation> loose{observe(kParis, truth, 1.8, 5.0),
                                   observe(kLyon, truth, 1.8, 5.0)};
  std::vector<VpObservation> tight{observe(kParis, truth, 1.05, 0.2),
                                   observe(kLyon, truth, 1.05, 0.2)};
  const CbgResult rl = cbg_geolocate(loose);
  const CbgResult rt = cbg_geolocate(tight);
  ASSERT_TRUE(rl.ok);
  ASSERT_TRUE(rt.ok);
  EXPECT_LT(rt.region.area_km2, rl.region.area_km2);
}

// One test per degradation tier: the verdict tells callers running under
// platform weather how much to trust a fix built from whatever
// measurements survived.
TEST(CbgDegradation, FullConstraintsVerdictOk) {
  const geo::GeoPoint truth{47.5, 5.0};
  const std::vector<VpObservation> obs{
      observe(kParis, truth), observe(kLyon, truth), observe(kBerlin, truth)};
  const CbgResult r = cbg_geolocate(obs);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.verdict, CbgVerdict::Ok);
  EXPECT_EQ(r.surviving_constraints, 3u);
  // No widening: the confidence radius is the region's equivalent circle.
  EXPECT_NEAR(r.confidence_radius_km,
              std::sqrt(r.region.area_km2 / geo::kPi), 1e-6);
  EXPECT_GT(r.confidence_radius_km, 0.0);
}

TEST(CbgDegradation, StarvedConstraintsVerdictDegradedWithWidenedRadius) {
  const geo::GeoPoint truth{47.5, 5.0};
  const std::vector<VpObservation> two{observe(kParis, truth),
                                       observe(kLyon, truth)};
  const CbgResult r2 = cbg_geolocate(two);
  ASSERT_TRUE(r2.ok);  // still produces an estimate...
  EXPECT_EQ(r2.verdict, CbgVerdict::Degraded);  // ...but flags it
  EXPECT_EQ(r2.surviving_constraints, 2u);
  const double equivalent = std::sqrt(r2.region.area_km2 / geo::kPi);
  EXPECT_NEAR(r2.confidence_radius_km, equivalent * 2.0, 1e-6);  // 1 missing

  const std::vector<VpObservation> one{observe(kParis, truth)};
  const CbgResult r1 = cbg_geolocate(one);
  ASSERT_TRUE(r1.ok);
  EXPECT_EQ(r1.verdict, CbgVerdict::Degraded);
  // Two constraints missing widens further than one.
  EXPECT_NEAR(r1.confidence_radius_km,
              std::sqrt(r1.region.area_km2 / geo::kPi) * 3.0, 1e-6);
}

TEST(CbgDegradation, NoObservationsVerdictUnlocatable) {
  const CbgResult r = cbg_geolocate({});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.verdict, CbgVerdict::Unlocatable);
  EXPECT_EQ(r.surviving_constraints, 0u);
  EXPECT_DOUBLE_EQ(r.confidence_radius_km, 0.0);
}

TEST(CbgDegradation, EmptyIntersectionVerdictUnlocatable) {
  // The disjoint-disk construction from the fallback test, without the
  // rescue speed: no region, so no verdict better than Unlocatable.
  const geo::GeoPoint truth = geo::midpoint(kParis, kBerlin);
  std::vector<VpObservation> obs;
  for (const auto& vp : {kParis, kBerlin}) {
    const double d = geo::distance_km(vp, truth);
    obs.push_back({vp, geo::distance_to_min_rtt_ms(d) * 1.01});
  }
  CbgConfig strict;
  strict.soi_km_per_ms = geo::kSoiFourNinthsKmPerMs;
  const CbgResult r = cbg_geolocate(obs, strict);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.verdict, CbgVerdict::Unlocatable);
}

TEST(CbgDegradation, VerdictNamesRoundTrip) {
  EXPECT_EQ(to_string(CbgVerdict::Ok), "ok");
  EXPECT_EQ(to_string(CbgVerdict::Degraded), "degraded");
  EXPECT_EQ(to_string(CbgVerdict::Unlocatable), "unlocatable");
}

// Property sweep: randomized SOI-safe observation sets always produce a
// region that contains the truth, with the estimate bounded by the tightest
// constraint.
class CbgProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CbgProperty, EstimateBoundedByTightestConstraint) {
  auto gen = util::Pcg32{GetParam()};
  const geo::GeoPoint truth{gen.uniform(-55.0, 55.0),
                            gen.uniform(-170.0, 170.0)};
  std::vector<VpObservation> obs;
  double min_radius = 1e12;
  const int n = 2 + static_cast<int>(gen.bounded(12));
  for (int i = 0; i < n; ++i) {
    const geo::GeoPoint vp = geo::destination(
        truth, gen.uniform(0.0, 360.0), gen.uniform(1.0, 3'000.0));
    const VpObservation o =
        observe(vp, truth, gen.uniform(1.03, 1.6), gen.uniform(0.1, 4.0));
    min_radius = std::min(
        min_radius,
        geo::rtt_to_max_distance_km(o.min_rtt_ms, geo::kSoiTwoThirdsKmPerMs));
    obs.push_back(o);
  }
  const CbgResult r = cbg_geolocate(obs);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(geo::region_contains(r.disks, truth));
  EXPECT_LE(geo::distance_km(r.estimate, truth), 2.0 * min_radius + 1.0);
}

INSTANTIATE_TEST_SUITE_P(RandomObservationSets, CbgProperty,
                         ::testing::Range<std::uint64_t>(100, 124));

}  // namespace
}  // namespace geoloc::core
