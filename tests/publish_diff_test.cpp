// Snapshot diff: exact churn accounting between two hand-built versions.
#include "publish/diff.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "publish/snapshot.h"

namespace geoloc::publish {
namespace {

Record rec(const char* prefix, double lat, double lon,
           Method method = Method::Cbg,
           core::CbgVerdict tier = core::CbgVerdict::Ok,
           double measured_at_s = 0.0) {
  Record r;
  r.prefix = *net::Prefix::parse(prefix);
  r.location = {lat, lon};
  r.method = method;
  r.tier = tier;
  r.measured_at_s = measured_at_s;
  r.provenance = "diff-test";
  return r;
}

std::shared_ptr<const Snapshot> snap(std::vector<Record> records,
                                     std::uint32_t version) {
  SnapshotBuilder b;
  b.add(records);
  std::string error;
  auto s = Snapshot::from_bytes(
      b.build(SnapshotMeta{.dataset_version = version, .source = "diff"}),
      &error);
  EXPECT_NE(s, nullptr) << error;
  return s;
}

TEST(SnapshotDiff, CountsAddedRemovedMovedAndChanges) {
  // v1: four prefixes. v2: one removed, one added, one moved far, one with
  // method+tier change and a fresher timestamp, one byte-identical.
  const auto v1 = snap(
      {
          rec("10.0.0.0/24", 48.85, 2.35),                // stays identical
          rec("10.0.1.0/24", 52.52, 13.40),               // will move ~878 km
          rec("10.0.2.0/24", 40.0, -74.0, Method::Cbg,
              core::CbgVerdict::Ok, /*measured_at_s=*/100.0),  // method/tier
          rec("10.0.3.0/24", 35.0, 139.0),                // removed in v2
      },
      1);
  const auto v2 = snap(
      {
          rec("10.0.0.0/24", 48.85, 2.35),
          rec("10.0.1.0/24", 48.85, 2.35),                // Berlin -> Paris
          rec("10.0.2.0/24", 40.0, -74.0, Method::GeoDb,
              core::CbgVerdict::Degraded, /*measured_at_s=*/200.0),
          rec("10.0.4.0/24", 1.0, 1.0),                   // new prefix
      },
      2);

  const DiffStats d = diff_snapshots(*v1, *v2);
  EXPECT_EQ(d.from_version, 1u);
  EXPECT_EQ(d.to_version, 2u);
  EXPECT_EQ(d.from_entries, 4u);
  EXPECT_EQ(d.to_entries, 4u);
  EXPECT_EQ(d.added, 1u);
  EXPECT_EQ(d.removed, 1u);
  EXPECT_EQ(d.retained, 3u);
  EXPECT_EQ(d.moved, 1u);
  EXPECT_EQ(d.method_changes, 1u);
  EXPECT_EQ(d.tier_changes, 1u);
  EXPECT_EQ(d.refreshed, 1u);
  // Median over ALL retained entries: moves are [0, 0, ~878], median 0.
  // The moved-only view carries the displacement.
  EXPECT_EQ(d.median_move_km, 0.0);
  EXPECT_NEAR(d.median_nonzero_move_km, 878.0, 10.0);  // Berlin -> Paris
  EXPECT_NEAR(d.max_move_km, 878.0, 10.0);
  EXPECT_NEAR(d.churn_fraction(), 3.0 / 4.0, 1e-12);
  ASSERT_EQ(d.moved_prefixes.size(), 1u);
  EXPECT_EQ(d.moved_prefixes[0], *net::Prefix::parse("10.0.1.0/24"));
}

TEST(SnapshotDiff, MedianCoversUnmovedEntries) {
  // Regression: a mostly-static snapshot (the common case) must report a
  // small median, not the median of its few movers. An earlier version
  // medianed only nonzero moves, reporting ~878 km here — as if the whole
  // dataset relocated when 1 entry in 5 did.
  std::vector<Record> before, after;
  for (int i = 0; i < 5; ++i) {
    const std::string p = "10.0." + std::to_string(i) + ".0/24";
    before.push_back(rec(p.c_str(), 52.52, 13.40));
    after.push_back(i == 0 ? rec(p.c_str(), 48.85, 2.35)
                           : rec(p.c_str(), 52.52, 13.40));
  }
  const DiffStats d = diff_snapshots(*snap(before, 1), *snap(after, 2));
  EXPECT_EQ(d.retained, 5u);
  EXPECT_EQ(d.moved, 1u);
  EXPECT_EQ(d.median_move_km, 0.0);                    // 4 of 5 held still
  EXPECT_NEAR(d.median_nonzero_move_km, 878.0, 10.0);  // the one mover
  ASSERT_EQ(d.moved_prefixes.size(), 1u);
  EXPECT_EQ(d.moved_prefixes[0], *net::Prefix::parse("10.0.0.0/24"));
}

TEST(SnapshotDiff, IdenticalSnapshotsReportNoChurn) {
  const std::vector<Record> records = {rec("10.0.0.0/24", 1.0, 2.0),
                                       rec("10.0.1.0/24", 3.0, 4.0)};
  const auto v1 = snap(records, 1);
  const auto v2 = snap(records, 2);
  const DiffStats d = diff_snapshots(*v1, *v2);
  EXPECT_EQ(d.added, 0u);
  EXPECT_EQ(d.removed, 0u);
  EXPECT_EQ(d.retained, 2u);
  EXPECT_EQ(d.moved, 0u);
  EXPECT_EQ(d.refreshed, 0u);
  EXPECT_EQ(d.churn_fraction(), 0.0);
  EXPECT_EQ(d.median_move_km, 0.0);
  EXPECT_EQ(d.median_nonzero_move_km, 0.0);
  EXPECT_TRUE(d.moved_prefixes.empty());
}

TEST(SnapshotDiff, SamePrefixDifferentLengthIsAddPlusRemove) {
  const auto v1 = snap({rec("10.0.0.0/24", 1.0, 1.0)}, 1);
  const auto v2 = snap({rec("10.0.0.0/25", 1.0, 1.0)}, 2);
  const DiffStats d = diff_snapshots(*v1, *v2);
  EXPECT_EQ(d.added, 1u);
  EXPECT_EQ(d.removed, 1u);
  EXPECT_EQ(d.retained, 0u);
  EXPECT_EQ(d.churn_fraction(), 2.0);
}

TEST(SnapshotDiff, MoveThresholdSeparatesJitterFromRelocation) {
  const auto v1 = snap({rec("10.0.0.0/24", 50.0, 8.0)}, 1);
  // ~0.7 km move: jitter under the default 1 km threshold.
  const auto v2 = snap({rec("10.0.0.0/24", 50.0063, 8.0)}, 2);
  EXPECT_EQ(diff_snapshots(*v1, *v2).moved, 0u);
  EXPECT_EQ(diff_snapshots(*v1, *v2, /*move_threshold_km=*/0.1).moved, 1u);
}

TEST(SnapshotDiff, EmptySnapshotsDiffCleanly) {
  const auto v1 = snap({}, 1);
  const auto v2 = snap({rec("10.0.0.0/24", 1.0, 1.0)}, 2);
  const DiffStats both_empty = diff_snapshots(*v1, *v1);
  EXPECT_EQ(both_empty.churn_fraction(), 0.0);
  const DiffStats grow = diff_snapshots(*v1, *v2);
  EXPECT_EQ(grow.added, 1u);
  EXPECT_EQ(grow.removed, 0u);
}

TEST(SnapshotDiff, FormatMentionsTheHeadlineNumbers) {
  const auto v1 = snap({rec("10.0.0.0/24", 52.52, 13.40)}, 1);
  const auto v2 = snap({rec("10.0.0.0/24", 48.85, 2.35),
                        rec("10.0.1.0/24", 1.0, 1.0)},
                       2);
  const std::string report = format_diff(diff_snapshots(*v1, *v2));
  EXPECT_NE(report.find("v1"), std::string::npos);
  EXPECT_NE(report.find("v2"), std::string::npos);
  EXPECT_NE(report.find("added"), std::string::npos);
  EXPECT_NE(report.find("moved"), std::string::npos);
}

}  // namespace
}  // namespace geoloc::publish
