#include "eval/street_campaign.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "test_scenario.h"
#include "util/stats.h"

namespace geoloc::eval {
namespace {

using geoloc::testing::small_scenario;

const StreetCampaign& campaign() { return street_campaign(small_scenario()); }

TEST(StreetCampaign, OneRecordPerTarget) {
  EXPECT_EQ(campaign().records.size(), small_scenario().targets().size());
}

TEST(StreetCampaign, ProcessCacheReturnsSameObject) {
  EXPECT_EQ(&street_campaign(small_scenario()), &campaign());
}

TEST(StreetCampaign, ErrorsAreFiniteAndBounded) {
  for (const StreetRecord& r : campaign().records) {
    EXPECT_GE(r.street_error_km, 0.0F);
    EXPECT_LT(r.street_error_km, 20'000.0F);
    EXPECT_GE(r.elapsed_seconds, 0.0F);
  }
}

TEST(StreetCampaign, StreetTracksCbg) {
  // Figure 5a's headline: street level ~ CBG, not two orders better.
  std::vector<double> street, cbg;
  for (const StreetRecord& r : campaign().records) {
    street.push_back(r.street_error_km);
    if (r.cbg_error_km >= 0) cbg.push_back(r.cbg_error_km);
  }
  const double ms = util::median(street);
  const double mc = util::median(cbg);
  EXPECT_LT(ms, mc * 4.0);
  EXPECT_GT(ms, mc / 4.0);
  EXPECT_GT(ms, 1.0);  // nowhere near the original paper's 690 m
}

TEST(StreetCampaign, OracleIsTheLowerBound) {
  std::vector<double> street, oracle;
  for (const StreetRecord& r : campaign().records) {
    if (r.oracle_error_km < 0) continue;
    street.push_back(r.street_error_km);
    oracle.push_back(r.oracle_error_km);
  }
  EXPECT_LT(util::median(oracle), util::median(street));
}

TEST(StreetCampaign, NegativeFractionsAreFractions) {
  int measured = 0;
  for (const StreetRecord& r : campaign().records) {
    if (r.negative_fraction < 0) continue;
    ++measured;
    EXPECT_LE(r.negative_fraction, 1.0F);
  }
  EXPECT_GT(measured, static_cast<int>(campaign().records.size() / 2));
}

TEST(StreetCampaign, DistancePairsAreUsableLandmarks) {
  for (const StreetRecord& r : campaign().records) {
    for (const auto& [geo_km, meas_km] : r.distances) {
      EXPECT_GE(geo_km, 0.0F);
      EXPECT_GE(meas_km, 0.0F);
    }
  }
}

TEST(StreetCampaign, PearsonIsWeak) {
  // Section 5.2.3: the measured/geographic distance correlation is ~0.08.
  std::vector<double> pearson;
  for (const StreetRecord& r : campaign().records) {
    if (r.landmarks_measured >= 2) pearson.push_back(r.pearson);
  }
  ASSERT_GT(pearson.size(), 20u);
  EXPECT_LT(util::median(pearson), 0.4);
}

TEST(StreetCampaign, NearestCheckedNeverCloserThanNearest) {
  for (const StreetRecord& r : campaign().records) {
    if (r.nearest_checked_landmark_km < 0) continue;
    ASSERT_GE(r.nearest_landmark_km, 0.0F);
    EXPECT_GE(r.nearest_checked_landmark_km, r.nearest_landmark_km);
  }
}

TEST(StreetCampaign, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "street-campaign-test.bin";
  ASSERT_TRUE(campaign().save(path, /*tag=*/99));
  StreetCampaign loaded;
  ASSERT_TRUE(loaded.load(path, 99));
  ASSERT_EQ(loaded.records.size(), campaign().records.size());
  for (std::size_t i = 0; i < loaded.records.size(); ++i) {
    EXPECT_EQ(loaded.records[i].street_error_km,
              campaign().records[i].street_error_km);
    EXPECT_EQ(loaded.records[i].distances, campaign().records[i].distances);
    EXPECT_EQ(loaded.records[i].tier_reached,
              campaign().records[i].tier_reached);
  }
  StreetCampaign wrong;
  EXPECT_FALSE(wrong.load(path, 98));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geoloc::eval
