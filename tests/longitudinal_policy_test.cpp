// The longitudinal driver's structural contract: every policy runs the
// full epoch loop (churn -> workload -> campaign -> republish -> hot
// swap), respects the credit budget, stays deterministic, and is
// byte-identical across GEOLOC_THREADS (the final snapshot's serialized
// bytes are the oracle — DESIGN.md §9 extended to a multi-epoch world).
#include "eval/longitudinal.h"

#include <gtest/gtest.h>

#include <vector>

#include "scenario/presets.h"
#include "util/parallel.h"

namespace geoloc::eval {
namespace {

/// Run fn with the pool sized to `threads`, restoring the default after.
template <typename Fn>
auto at_threads(unsigned threads, Fn&& fn) {
  util::set_thread_count(threads);
  auto result = fn();
  util::set_thread_count(0);
  return result;
}

scenario::ScenarioConfig base_config() {
  auto cfg = scenario::small_config();
  cfg.cache_dir = "";
  return cfg;
}

/// Small but real: three months, modest workload, visible churn.
LongitudinalConfig small_run() {
  LongitudinalConfig cfg;
  cfg.epochs = 3;
  cfg.lookups_per_epoch = 96;
  cfg.budget_prefixes = 16;
  cfg.vps_per_target = 4;
  cfg.packets = 2;
  cfg.churn.prefix_reassignment_rate = 0.08;
  return cfg;
}

LongitudinalResult run(RemeasurePolicy policy,
                       const LongitudinalConfig& cfg = small_run()) {
  scenario::Scenario s(base_config());
  return run_longitudinal(s, policy, cfg);
}

TEST(Longitudinal, EveryPolicyCompletesTheEpochLoop) {
  for (const RemeasurePolicy policy : all_policies()) {
    const LongitudinalResult r = run(policy);
    SCOPED_TRACE(std::string(to_string(policy)));
    EXPECT_FALSE(r.interrupted);
    EXPECT_EQ(r.completed_epochs, 3u);
    ASSERT_EQ(r.epochs.size(), 3u);
    EXPECT_FALSE(r.final_snapshot_bytes.empty());
    EXPECT_GT(r.total_credits, 0u);
    EXPECT_GT(r.mean_query_error_km, 0.0);
    for (const EpochStats& e : r.epochs) {
      // Snapshot versions advance one per epoch (bootstrap is v1).
      EXPECT_EQ(e.dataset_version, e.epoch + 1);
      EXPECT_LE(e.selected_prefixes, 16u);
      // With ttl == epoch length, the whole dataset comes due each epoch.
      EXPECT_GT(e.stale_prefixes, 0u);
    }
  }
}

TEST(Longitudinal, RepeatRunsAreByteIdentical) {
  const LongitudinalResult a = run(RemeasurePolicy::DiffTriggered);
  const LongitudinalResult b = run(RemeasurePolicy::DiffTriggered);
  EXPECT_EQ(a.final_snapshot_bytes, b.final_snapshot_bytes);
  EXPECT_EQ(a.total_credits, b.total_credits);
  EXPECT_DOUBLE_EQ(a.mean_query_error_km, b.mean_query_error_km);
}

TEST(Longitudinal, ByteIdenticalAcrossThreadCounts) {
  for (const RemeasurePolicy policy :
       {RemeasurePolicy::TtlExpiry, RemeasurePolicy::DiffTriggered}) {
    const auto serial = at_threads(1, [&] { return run(policy); });
    const auto parallel = at_threads(8, [&] { return run(policy); });
    SCOPED_TRACE(std::string(to_string(policy)));
    EXPECT_EQ(serial.final_snapshot_bytes, parallel.final_snapshot_bytes);
    EXPECT_EQ(serial.total_credits, parallel.total_credits);
  }
}

TEST(Longitudinal, PoliciesActuallyDiverge) {
  // Identical worlds, identical budgets — the selection policy is the only
  // difference, and it must show up in the published bytes.
  const LongitudinalResult ttl = run(RemeasurePolicy::TtlExpiry);
  const LongitudinalResult diff = run(RemeasurePolicy::DiffTriggered);
  const LongitudinalResult queue = run(RemeasurePolicy::StalenessQueue);
  EXPECT_NE(ttl.final_snapshot_bytes, diff.final_snapshot_bytes);
  EXPECT_NE(ttl.final_snapshot_bytes, queue.final_snapshot_bytes);
}

TEST(Longitudinal, BudgetZeroMeansUnbounded) {
  LongitudinalConfig cfg = small_run();
  cfg.epochs = 1;
  cfg.budget_prefixes = 0;
  const LongitudinalResult r = run(RemeasurePolicy::TtlExpiry, cfg);
  ASSERT_EQ(r.epochs.size(), 1u);
  // Unbounded TTL policy re-measures everything due.
  EXPECT_EQ(r.epochs[0].selected_prefixes, r.epochs[0].stale_prefixes);
}

TEST(Longitudinal, TighterBudgetSpendsFewerCredits) {
  LongitudinalConfig lean = small_run();
  lean.budget_prefixes = 4;
  LongitudinalConfig rich = small_run();
  rich.budget_prefixes = 64;
  const LongitudinalResult a = run(RemeasurePolicy::TtlExpiry, lean);
  const LongitudinalResult b = run(RemeasurePolicy::TtlExpiry, rich);
  EXPECT_LT(a.total_credits, b.total_credits);
}

TEST(Longitudinal, FrontierCoversTheSweepGrid) {
  LongitudinalConfig cfg = small_run();
  cfg.epochs = 2;
  cfg.lookups_per_epoch = 48;
  const std::vector<std::size_t> budgets = {8, 24};
  const auto frontier = freshness_frontier(base_config(), budgets, cfg);
  ASSERT_EQ(frontier.size(), budgets.size() * all_policies().size());
  for (const FrontierPoint& p : frontier) {
    EXPECT_GT(p.credits_spent, 0u);
    EXPECT_GT(p.mean_query_error_km, 0.0);
    EXPECT_GT(p.final_snapshot_error_km, 0.0);
  }
}

}  // namespace
}  // namespace geoloc::eval
