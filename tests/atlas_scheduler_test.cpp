#include "atlas/scheduler.h"

#include <gtest/gtest.h>

#include "test_scenario.h"

namespace geoloc::atlas {
namespace {

using geoloc::testing::small_scenario;

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : platform_(small_scenario().world(), small_scenario().latency()),
        scheduler_(platform_) {}

  Platform platform_;
  MeasurementScheduler scheduler_;
};

TEST_F(SchedulerTest, EmptyPlanIsFree) {
  const CampaignPlan p = scheduler_.plan({});
  EXPECT_EQ(p.measurements, 0u);
  EXPECT_EQ(p.rounds, 0u);
  EXPECT_EQ(p.credits, 0u);
  EXPECT_DOUBLE_EQ(p.duration_s, 0.0);
}

TEST_F(SchedulerTest, CreditsMatchPolicy) {
  const auto& s = small_scenario();
  std::vector<MeasurementRequest> reqs{
      {s.vps()[0], s.targets()[0], MeasurementKind::Ping, 3},
      {s.vps()[1], s.targets()[0], MeasurementKind::Traceroute, 0},
  };
  const CampaignPlan p = scheduler_.plan(reqs);
  const auto& credits = platform_.config().credits;
  EXPECT_EQ(p.credits, credits.per_ping_packet * 3 + credits.per_traceroute);
  EXPECT_EQ(p.measurements, 2u);
}

TEST_F(SchedulerTest, RoundsFollowBatchSize) {
  const auto& s = small_scenario();
  SchedulerConfig cfg;
  cfg.batch_size = 10;
  const MeasurementScheduler tight(platform_, cfg);
  std::vector<MeasurementRequest> reqs(
      25, {s.vps()[0], s.targets()[0], MeasurementKind::Ping, 1});
  const CampaignPlan p = tight.plan(reqs);
  EXPECT_EQ(p.rounds, 3u);
  EXPECT_GE(p.duration_s, 3.0 * cfg.round_overhead_s);
}

TEST_F(SchedulerTest, DurationBoundByTheSlowestVp) {
  // One probe sending 1200 packets at 4-12 pps needs 100-300 s on top of
  // the round overhead.
  const auto& s = small_scenario();
  const sim::HostId probe = s.probe_sanitisation().kept[0];
  std::vector<MeasurementRequest> reqs(
      400, {probe, s.targets()[0], MeasurementKind::Ping, 3});
  const CampaignPlan p = scheduler_.plan(reqs);
  const double pps = platform_.probing_rate_pps(probe);
  EXPECT_NEAR(p.duration_s,
              1200.0 / pps + scheduler_.config().round_overhead_s, 1e-6);
}

TEST_F(SchedulerTest, ParallelVpsDoNotAddUp) {
  // The same packet volume spread over many VPs is much faster than
  // concentrated on one.
  const auto& s = small_scenario();
  std::vector<MeasurementRequest> spread, concentrated;
  for (int i = 0; i < 200; ++i) {
    spread.push_back({s.vps()[static_cast<std::size_t>(i) % 100],
                      s.targets()[0], MeasurementKind::Ping, 3});
    concentrated.push_back(
        {s.vps()[0], s.targets()[0], MeasurementKind::Ping, 3});
  }
  EXPECT_LT(scheduler_.plan(spread).duration_s,
            scheduler_.plan(concentrated).duration_s);
}

TEST_F(SchedulerTest, FullMeshMatchesManualCount) {
  const auto& s = small_scenario();
  const std::span<const sim::HostId> vps(s.vps().data(), 20);
  const std::span<const sim::HostId> targets(s.targets().data(), 5);
  const CampaignPlan p = scheduler_.plan_full_mesh(vps, targets, 3);
  EXPECT_EQ(p.measurements, 100u);
  EXPECT_EQ(p.packets, 300u);
}

TEST_F(SchedulerTest, TraceroutePacketsAreEstimated) {
  const auto& s = small_scenario();
  std::vector<MeasurementRequest> reqs{
      {s.vps()[0], s.targets()[0], MeasurementKind::Traceroute, 0}};
  const CampaignPlan p = scheduler_.plan(reqs);
  EXPECT_EQ(p.packets,
            static_cast<std::uint64_t>(scheduler_.config().traceroute_packets));
}

}  // namespace
}  // namespace geoloc::atlas
