#include "spatial/interval_index.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "geo/geodesy.h"
#include "util/durable.h"
#include "util/parallel.h"

namespace geoloc::spatial {
namespace {

namespace fs = std::filesystem;

std::vector<geo::GeoPoint> random_points(std::size_t n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> lat(-90.0, 90.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  std::vector<geo::GeoPoint> out(n);
  for (auto& p : out) p = geo::GeoPoint{lat(rng), lon(rng)};
  return out;
}

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() /
          ("geoloc-spidx-" + std::to_string(::getpid()) + "-" + name))
      .string();
}

TEST(SpatialIntervalIndex, DiskCandidatesAreASupersetAndExactAfterFilter) {
  const auto points = random_points(2000, 1);
  const IntervalIndex idx = IntervalIndex::build(points);
  EXPECT_EQ(idx.size(), points.size());

  std::mt19937 rng(2);
  std::uniform_real_distribution<double> lat(-85.0, 85.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  std::uniform_real_distribution<double> radius(10.0, 1500.0);
  for (int trial = 0; trial < 25; ++trial) {
    const geo::Disk disk{{lat(rng), lon(rng)}, radius(rng)};
    const auto cand = idx.candidates_in_disk(disk);

    // Exact filter over the candidates == brute force over all points.
    std::vector<std::uint32_t> got;
    for (const std::uint32_t id : cand) {
      if (geo::distance_km(points[id], disk.center) <= disk.radius_km) {
        got.push_back(id);
      }
    }
    std::sort(got.begin(), got.end());
    std::vector<std::uint32_t> want;
    for (std::uint32_t i = 0; i < points.size(); ++i) {
      if (geo::distance_km(points[i], disk.center) <= disk.radius_km) {
        want.push_back(i);
      }
    }
    EXPECT_EQ(got, want) << "disk " << disk.center.lat_deg << ","
                         << disk.center.lon_deg << " r=" << disk.radius_km;
  }
}

TEST(SpatialIntervalIndex, CandidatesNeverDuplicate) {
  const auto points = random_points(500, 3);
  const IntervalIndex idx = IntervalIndex::build(points);
  const auto cand =
      idx.candidates_in_disk(geo::Disk{{0.0, 0.0}, 5000.0});
  auto sorted = cand;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(SpatialIntervalIndex, AtTokenReturnsAscendingBucket) {
  // Several payloads at the same location share a leaf token; the bucket
  // must come back ascending regardless of insertion order.
  const geo::GeoPoint p{12.0, 34.0};
  std::vector<IntervalIndex::Item> items;
  for (const std::uint32_t id : {7u, 3u, 9u, 1u}) items.push_back({p, id});
  items.push_back({{13.0, 34.0}, 5u});
  const IntervalIndex idx = IntervalIndex::build(items);
  const auto bucket = idx.at_token(CellId::leaf_token(p));
  ASSERT_EQ(bucket.size(), 4u);
  EXPECT_TRUE(std::is_sorted(bucket.begin(), bucket.end()));
  EXPECT_EQ(bucket[0], 1u);
  EXPECT_EQ(bucket[3], 9u);
  EXPECT_TRUE(idx.at_token(CellId::leaf_token({50.0, 50.0})).empty());
}

TEST(SpatialIntervalIndex, EmptyIndexAnswersEverythingEmpty) {
  const IntervalIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_TRUE(idx.at_token(0).empty());
  EXPECT_TRUE(idx.candidates_in_disk(geo::Disk{{0.0, 0.0}, 1000.0}).empty());
  EXPECT_TRUE(
      idx.candidates_in_rect(LatLonRect::from_degrees(-90, 90, -180, 180))
          .empty());
}

TEST(SpatialIntervalIndex, BuildIsByteIdenticalAtAnyThreadCount) {
  const auto points = random_points(10'000, 4);
  util::set_thread_count(1);
  const IntervalIndex serial = IntervalIndex::build(points);
  util::set_thread_count(8);
  const IntervalIndex parallel = IntervalIndex::build(points);
  util::set_thread_count(0);
  EXPECT_EQ(serial, parallel);

  // And through serialization: the bytes on disk are identical too.
  const std::string p1 = temp_path("serial.bin");
  const std::string p2 = temp_path("parallel.bin");
  ASSERT_TRUE(serial.save(p1));
  ASSERT_TRUE(parallel.save(p2));
  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  const std::string b1((std::istreambuf_iterator<char>(f1)), {});
  const std::string b2((std::istreambuf_iterator<char>(f2)), {});
  EXPECT_EQ(b1, b2);
  fs::remove(p1);
  fs::remove(p2);
}

TEST(SpatialIntervalIndex, SaveLoadRoundTrip) {
  const auto points = random_points(777, 5);
  const IntervalIndex idx = IntervalIndex::build(points);
  const std::string path = temp_path("roundtrip.bin");
  ASSERT_TRUE(idx.save(path));
  const auto loaded = IntervalIndex::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, idx);
  fs::remove(path);
}

TEST(SpatialIntervalIndex, EmptyIndexRoundTrips) {
  const IntervalIndex idx;
  const std::string path = temp_path("empty.bin");
  ASSERT_TRUE(idx.save(path));
  const auto loaded = IntervalIndex::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, idx);
  fs::remove(path);
}

TEST(SpatialIntervalIndex, MissingFileIsACleanMiss) {
  EXPECT_FALSE(IntervalIndex::load(temp_path("never-written.bin")));
}

TEST(SpatialIntervalIndex, CorruptionIsDetectedAndQuarantined) {
  const auto points = random_points(200, 6);
  const IntervalIndex idx = IntervalIndex::build(points);
  const std::string path = temp_path("corrupt.bin");
  ASSERT_TRUE(idx.save(path));

  // Flip one payload byte: the frame checksum must reject the file and
  // move it aside so a regeneration can write a clean one.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(60);
  char c = 0;
  f.seekg(60);
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x20);
  f.seekp(60);
  f.write(&c, 1);
  f.close();

  EXPECT_FALSE(IntervalIndex::load(path));
  EXPECT_FALSE(fs::exists(path)) << "corrupt file must be quarantined";
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  fs::remove(path + ".corrupt");

  ASSERT_TRUE(idx.save(path));  // regeneration succeeds
  EXPECT_TRUE(IntervalIndex::load(path).has_value());
  fs::remove(path);
}

TEST(SpatialIntervalIndex, LoadIsZeroCopyAndAnswersQueriesFromTheMapping) {
  const auto points = random_points(1500, 8);
  const IntervalIndex idx = IntervalIndex::build(points);
  const std::string path = temp_path("mmap.bin");
  ASSERT_TRUE(idx.save(path));

  const auto loaded = IntervalIndex::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->zero_copy());
  EXPECT_TRUE(loaded->mapped());
  EXPECT_EQ(*loaded, idx);

  // Queries against the mapping equal queries against the owned build.
  const geo::Disk disk{{10.0, 20.0}, 2000.0};
  EXPECT_EQ(loaded->candidates_in_disk(disk), idx.candidates_in_disk(disk));
  const auto token = CellId::leaf_token(points[42]);
  const auto a = idx.at_token(token);
  const auto b = loaded->at_token(token);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));

  // A copy shares the mapping: it must survive the original's destruction.
  auto copy = *loaded;
  EXPECT_TRUE(copy.zero_copy());
  EXPECT_EQ(copy, idx);
  fs::remove(path);
}

TEST(SpatialIntervalIndex, BufferedFallbackLoadsWhenMmapIsDisabled) {
  const auto points = random_points(600, 9);
  const IntervalIndex idx = IntervalIndex::build(points);
  const std::string path = temp_path("nommap.bin");
  ASSERT_TRUE(idx.save(path));

  ::setenv("GEOLOC_DURABLE_NO_MMAP", "1", 1);
  const auto loaded = IntervalIndex::load(path);
  ::unsetenv("GEOLOC_DURABLE_NO_MMAP");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->zero_copy());   // still aliases the fallback buffer
  EXPECT_FALSE(loaded->mapped());     // ...but it is not a mapping
  EXPECT_EQ(*loaded, idx);
  fs::remove(path);
}

TEST(SpatialIntervalIndex, ZeroCopyIndexReserializesIdentically) {
  // save() reads through the accessors, so a mapped index writes the same
  // bytes an owning one does.
  const auto points = random_points(400, 10);
  const IntervalIndex idx = IntervalIndex::build(points);
  const std::string p1 = temp_path("reserialize-1.bin");
  const std::string p2 = temp_path("reserialize-2.bin");
  ASSERT_TRUE(idx.save(p1));
  const auto loaded = IntervalIndex::load(p1);
  ASSERT_TRUE(loaded.has_value() && loaded->zero_copy());
  ASSERT_TRUE(loaded->save(p2));
  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  const std::string b1((std::istreambuf_iterator<char>(f1)), {});
  const std::string b2((std::istreambuf_iterator<char>(f2)), {});
  EXPECT_EQ(b1, b2);
  fs::remove(p1);
  fs::remove(p2);
}

TEST(SpatialIntervalIndex, MappedCorruptionStillQuarantines) {
  // The mmap path validates the checksum against the mapping before any
  // byte is exposed; corruption must quarantine exactly like the buffered
  // reader.
  const auto points = random_points(300, 11);
  const IntervalIndex idx = IntervalIndex::build(points);
  const std::string path = temp_path("mmap-corrupt.bin");
  ASSERT_TRUE(idx.save(path));
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(72);
  char c = 0;
  f.seekg(72);
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x01);
  f.seekp(72);
  f.write(&c, 1);
  f.close();
  EXPECT_FALSE(IntervalIndex::load(path));
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(path + ".corrupt"));
  fs::remove(path + ".corrupt");
}

TEST(SpatialIntervalIndex, ForeignMagicIsRejected) {
  // A framed file with someone else's magic must not decode.
  const auto points = random_points(50, 7);
  const IntervalIndex idx = IntervalIndex::build(points);
  const std::string path = temp_path("foreign.bin");
  ASSERT_TRUE(idx.save(path));
  const util::durable::FramedRead fr =
      util::durable::read_framed(path, kIntervalIndexMagic);
  ASSERT_TRUE(fr.ok());
  ASSERT_TRUE(util::durable::write_framed(path, /*magic=*/0x1234,
                                          kIntervalIndexVersion, fr.payload));
  EXPECT_FALSE(IntervalIndex::load(path));
  fs::remove(path);
  fs::remove(path + ".corrupt");
}

}  // namespace
}  // namespace geoloc::spatial
