#include "atlas/faults.h"

#include <gtest/gtest.h>

#include "scenario/presets.h"
#include "test_scenario.h"

namespace geoloc::atlas {
namespace {

using geoloc::testing::small_scenario;

FaultConfig storm() { return scenario::stormy_weather(); }

TEST(FaultModelCalm, DisabledWeatherNeverFails) {
  const auto& s = small_scenario();
  const FaultModel calm(s.world(), scenario::calm_weather());
  EXPECT_FALSE(calm.enabled());
  for (std::size_t i = 0; i < 50; ++i) {
    const sim::HostId vp = s.vps()[i];
    EXPECT_EQ(calm.vp_abandon_time_s(vp), FaultModel::kNever);
    EXPECT_FALSE(calm.vp_abandoned(vp, 1e12));
    EXPECT_FALSE(calm.vp_in_outage(vp, 3'600.0 * i));
    EXPECT_TRUE(calm.vp_available(vp, 1e9));
    EXPECT_TRUE(calm.outage_windows(vp, 1e7).empty());
  }
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_FALSE(calm.target_unresponsive(s.targets()[i % s.targets().size()]));
    EXPECT_FALSE(calm.round_fails(i));
    EXPECT_FALSE(calm.measurement_rejected(i));
  }
}

TEST(FaultModelCalm, RatesIgnoredWhileDisabled) {
  // `enabled` is the master switch: a disabled config with violent rates is
  // still fair weather.
  auto config = storm();
  config.enabled = false;
  const FaultModel m(small_scenario().world(), config);
  EXPECT_FALSE(m.vp_abandoned(small_scenario().vps()[0], 1e12));
  EXPECT_FALSE(m.round_fails(0));
}

TEST(FaultModelDeterminism, SameSeedSameWeather) {
  const auto& s = small_scenario();
  const FaultModel a(s.world(), storm());
  const FaultModel b(s.world(), storm());
  for (std::size_t i = 0; i < 100; ++i) {
    const sim::HostId vp = s.vps()[i];
    EXPECT_EQ(a.vp_abandon_time_s(vp), b.vp_abandon_time_s(vp));
    EXPECT_EQ(a.vp_in_outage(vp, 12'345.0), b.vp_in_outage(vp, 12'345.0));
    EXPECT_EQ(a.target_unresponsive(vp), b.target_unresponsive(vp));
    EXPECT_EQ(a.round_fails(i), b.round_fails(i));
    EXPECT_EQ(a.measurement_rejected(i), b.measurement_rejected(i));
  }
}

TEST(FaultModelDeterminism, DifferentSeedDifferentWeather) {
  const auto& s = small_scenario();
  const FaultModel a(s.world(), scenario::stormy_weather(1));
  const FaultModel b(s.world(), scenario::stormy_weather(2));
  int differences = 0;
  for (std::size_t i = 0; i < 200; ++i) {
    differences +=
        a.vp_abandon_time_s(s.vps()[i]) != b.vp_abandon_time_s(s.vps()[i]);
  }
  EXPECT_GT(differences, 150);
}

TEST(FaultModelChurn, AbandonmentIsMonotonicInTime) {
  const auto& s = small_scenario();
  const FaultModel m(s.world(), storm());
  for (std::size_t i = 0; i < 100; ++i) {
    const sim::HostId vp = s.vps()[i];
    const double t = m.vp_abandon_time_s(vp);
    ASSERT_GT(t, 0.0);
    EXPECT_FALSE(m.vp_abandoned(vp, t * 0.5));
    EXPECT_TRUE(m.vp_abandoned(vp, t));
    EXPECT_TRUE(m.vp_abandoned(vp, t * 2.0));
  }
}

TEST(FaultModelChurn, HazardRateMatchesOverThePopulation) {
  // ~6%/day probe hazard: within one day, a few percent of probes die.
  const auto& s = small_scenario();
  const FaultModel m(s.world(), storm());
  int dead = 0, probes = 0;
  for (sim::HostId vp : s.probe_sanitisation().kept) {
    ++probes;
    dead += m.vp_abandoned(vp, 86'400.0);
  }
  const double fraction = static_cast<double>(dead) / probes;
  EXPECT_GT(fraction, 0.02);
  EXPECT_LT(fraction, 0.12);
}

TEST(FaultModelChurn, AnchorsChurnLessThanProbes) {
  const auto& s = small_scenario();
  const FaultModel m(s.world(), storm());
  int anchor_dead = 0;
  for (sim::HostId a : s.targets()) {
    anchor_dead += m.vp_abandoned(a, 86'400.0 * 5);
  }
  int probe_dead = 0;
  for (sim::HostId p : s.probe_sanitisation().kept) {
    probe_dead += m.vp_abandoned(p, 86'400.0 * 5);
  }
  const double anchor_rate =
      static_cast<double>(anchor_dead) / s.targets().size();
  const double probe_rate = static_cast<double>(probe_dead) /
                            s.probe_sanitisation().kept.size();
  EXPECT_LT(anchor_rate, probe_rate);
}

TEST(FaultModelOutages, WindowsAndPointQueriesAgree) {
  const auto& s = small_scenario();
  const FaultModel m(s.world(), storm());
  const double horizon = 86'400.0 * 3;
  int windows_total = 0;
  for (std::size_t i = 0; i < 30; ++i) {
    const sim::HostId vp = s.vps()[i];
    const auto windows = m.outage_windows(vp, horizon);
    windows_total += static_cast<int>(windows.size());
    for (const OutageWindow& w : windows) {
      ASSERT_LT(w.start_s, w.end_s);
      const double mid = (w.start_s + w.end_s) / 2.0;
      EXPECT_TRUE(m.vp_in_outage(vp, mid));
      EXPECT_FALSE(m.vp_in_outage(vp, w.start_s - 1e-3));
      if (w.end_s < horizon) {
        EXPECT_FALSE(m.vp_in_outage(vp, w.end_s + 1e-3));
      }
    }
  }
  // ~0.5 spells/day over 3 days and 30 VPs: dozens of windows expected.
  EXPECT_GT(windows_total, 10);
}

TEST(FaultModelTargets, UnresponsiveFractionNearConfigured) {
  const auto& s = small_scenario();
  auto config = storm();
  config.target_unresponsive_rate = 0.12;
  const FaultModel m(s.world(), config);
  int dark = 0, total = 0;
  for (sim::HostId probe : s.probe_sanitisation().kept) {
    ++total;
    dark += m.target_unresponsive(probe);
  }
  const double fraction = static_cast<double>(dark) / total;
  EXPECT_GT(fraction, 0.08);
  EXPECT_LT(fraction, 0.16);
}

TEST(FaultModelApi, RoundFailureRateNearConfigured) {
  auto config = storm();
  config.round_failure_rate = 0.2;
  const FaultModel m(small_scenario().world(), config);
  int failed = 0;
  for (std::uint64_t r = 0; r < 2'000; ++r) failed += m.round_fails(r);
  EXPECT_GT(failed, 300);
  EXPECT_LT(failed, 500);
}

TEST(FaultModelApi, RejectionsAreIndependentPerSubmission) {
  auto config = storm();
  config.measurement_rejection_rate = 0.1;
  const FaultModel m(small_scenario().world(), config);
  int rejected = 0;
  for (std::uint64_t i = 0; i < 5'000; ++i) {
    rejected += m.measurement_rejected(i);
  }
  EXPECT_GT(rejected, 350);
  EXPECT_LT(rejected, 650);
}

TEST(WeatherPresets, CalmIsDisabledStormIsNot) {
  EXPECT_FALSE(scenario::calm_weather().enabled);
  const auto stormy = scenario::stormy_weather();
  EXPECT_TRUE(stormy.enabled);
  EXPECT_GE(stormy.vp_abandon_per_day, 0.05);
  EXPECT_GE(stormy.target_unresponsive_rate, 0.10);
  EXPECT_GT(stormy.round_failure_rate, 0.0);
  const auto drizzle = scenario::drizzle_weather();
  EXPECT_TRUE(drizzle.enabled);
  EXPECT_LT(drizzle.vp_abandon_per_day, stormy.vp_abandon_per_day);
  EXPECT_LT(drizzle.target_unresponsive_rate,
            stormy.target_unresponsive_rate);
}

}  // namespace
}  // namespace geoloc::atlas
