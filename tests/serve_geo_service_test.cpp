// GeoService behaviour: serving answers with TTL/staleness handling, the
// RCU-style hot swap (including the TSan-exercised concurrent-read test),
// the re-measurement queue, and the full publish -> serve -> stale ->
// re-measure -> refresh -> diff loop on the shared small scenario.
#include "serve/geo_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "atlas/executor.h"
#include "atlas/platform.h"
#include "eval/publication.h"
#include "publish/compile.h"
#include "publish/diff.h"
#include "publish/snapshot.h"
#include "test_scenario.h"

namespace geoloc::serve {
namespace {

using publish::Method;
using publish::Record;
using publish::Snapshot;
using publish::SnapshotBuilder;
using publish::SnapshotMeta;

net::IPv4Address addr(const char* text) {
  return *net::IPv4Address::parse(text);
}

Record make_record(const char* prefix, double lat, float ttl_s,
                   double measured_at_s,
                   const char* provenance = "test") {
  Record r;
  r.prefix = *net::Prefix::parse(prefix);
  r.location = {lat, 0.0};
  r.method = Method::Cbg;
  r.tier = core::CbgVerdict::Ok;
  r.confidence_radius_km = 25.0f;
  r.ttl_s = ttl_s;
  r.measured_at_s = measured_at_s;
  r.provenance = provenance;
  return r;
}

std::shared_ptr<const Snapshot> make_snapshot(
    std::vector<Record> records, std::uint32_t version,
    double created_at_s = 0.0) {
  SnapshotBuilder b;
  for (auto& r : records) b.add(std::move(r));
  std::string error;
  auto snap = Snapshot::from_bytes(
      b.build(SnapshotMeta{.dataset_version = version,
                           .created_at_s = created_at_s,
                           .source = "unit test"}),
      &error);
  EXPECT_NE(snap, nullptr) << error;
  return snap;
}

TEST(GeoService, AnswersFreshStaleAndMiss) {
  GeoService service(make_snapshot(
      {make_record("10.0.0.0/24", 1.0, /*ttl_s=*/100.0f, /*measured_at=*/0.0),
       make_record("10.0.1.0/24", 2.0, /*ttl_s=*/0.0f, 0.0)},
      /*version=*/3));

  const Answer fresh = service.lookup(addr("10.0.0.7"), /*now_s=*/50.0);
  EXPECT_TRUE(fresh.found);
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(fresh.location.lat_deg, 1.0);
  EXPECT_EQ(fresh.age_s, 50.0);
  EXPECT_EQ(fresh.dataset_version, 3u);
  EXPECT_EQ(fresh.provenance, "test");

  // Past the TTL: still answered, but flagged and queued.
  const Answer stale = service.lookup(addr("10.0.0.7"), /*now_s=*/250.0);
  EXPECT_TRUE(stale.found);
  EXPECT_TRUE(stale.stale);
  EXPECT_EQ(service.remeasure_queue().size(), 1u);

  // ttl_s == 0 means never stale.
  const Answer eternal = service.lookup(addr("10.0.1.9"), /*now_s=*/1e9);
  EXPECT_TRUE(eternal.found);
  EXPECT_FALSE(eternal.stale);

  const Answer miss = service.lookup(addr("192.168.0.1"), 0.0);
  EXPECT_FALSE(miss.found);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.lookups, 4u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.stale_hits, 1u);
}

TEST(GeoService, LookupBeforeFirstPublishMisses) {
  GeoService service;
  EXPECT_EQ(service.current(), nullptr);
  const Answer a = service.lookup(addr("1.2.3.4"), 0.0);
  EXPECT_FALSE(a.found);
  EXPECT_EQ(service.stats().misses, 1u);
}

TEST(GeoService, AnswerSurvivesHotSwap) {
  GeoService service(make_snapshot(
      {make_record("10.0.0.0/24", 1.0, 0.0f, 0.0, "from-v1")}, 1));
  const Answer before = service.lookup(addr("10.0.0.1"), 0.0);
  ASSERT_TRUE(before.found);

  service.publish(make_snapshot(
      {make_record("10.0.0.0/24", 2.0, 0.0f, 0.0, "from-v2")}, 2));
  // The old answer's provenance view must still be readable: it pins the
  // v1 snapshot via its `source` member.
  EXPECT_EQ(before.provenance, "from-v1");
  EXPECT_EQ(before.dataset_version, 1u);

  const Answer after = service.lookup(addr("10.0.0.1"), 0.0);
  EXPECT_EQ(after.provenance, "from-v2");
  EXPECT_EQ(after.dataset_version, 2u);
  EXPECT_EQ(service.stats().swaps, 1u);  // the ctor snapshot is not a swap
}

TEST(GeoService, BatchServesOneConsistentVersion) {
  GeoService service(make_snapshot(
      {make_record("10.0.0.0/24", 1.0, 0.0f, 0.0),
       make_record("10.0.1.0/24", 2.0, 0.0f, 0.0)},
      1));
  const std::vector<net::IPv4Address> addrs = {
      addr("10.0.0.1"), addr("10.0.1.1"), addr("99.0.0.1")};
  std::vector<Answer> out(addrs.size());
  service.lookup_batch(addrs, 0.0, out);
  EXPECT_TRUE(out[0].found);
  EXPECT_TRUE(out[1].found);
  EXPECT_FALSE(out[2].found);
  EXPECT_EQ(out[0].dataset_version, out[1].dataset_version);
}

TEST(GeoService, StalePrefixScanFindsExpiredEntries) {
  GeoService service(make_snapshot(
      {make_record("10.0.0.0/24", 1.0, /*ttl_s=*/10.0f, /*measured_at=*/0.0),
       make_record("10.0.1.0/24", 2.0, /*ttl_s=*/1000.0f, 0.0),
       make_record("10.0.2.0/24", 3.0, /*ttl_s=*/0.0f, 0.0)},
      1));
  const auto stale = service.stale_prefixes(/*now_s=*/500.0);
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], *net::Prefix::parse("10.0.0.0/24"));
}

TEST(GeoService, StalenessBoundaryAgreesEndToEnd) {
  // ttl == 100, measured at 0: the entry is due at EXACTLY now == 100, and
  // every consumer must agree — the lookup's stale flag, the proactive
  // stale_prefixes scan, and (via the queue they both feed) what
  // plan_remeasurement gets to work with. Before the inclusive-boundary
  // fix, an entry whose ttl equals the re-measurement cadence was never
  // due at the cadence tick.
  GeoService service(make_snapshot(
      {make_record("10.0.0.0/24", 1.0, /*ttl_s=*/100.0f, /*measured_at=*/0.0)},
      1));

  // One tick before the horizon: fresh everywhere.
  EXPECT_FALSE(service.lookup(addr("10.0.0.7"), 99.999).stale);
  EXPECT_TRUE(service.stale_prefixes(99.999).empty());
  EXPECT_EQ(service.remeasure_queue().size(), 0u);

  // Exactly at the horizon: stale everywhere.
  const Answer at_horizon = service.lookup(addr("10.0.0.7"), 100.0);
  EXPECT_TRUE(at_horizon.stale);
  EXPECT_EQ(service.remeasure_queue().size(), 1u);
  const auto scan = service.stale_prefixes(100.0);
  ASSERT_EQ(scan.size(), 1u);
  EXPECT_EQ(scan[0], *net::Prefix::parse("10.0.0.0/24"));

  // The queue and the scan hand the same prefix to the campaign planner.
  const auto queued = service.remeasure_queue().drain();
  ASSERT_EQ(queued.size(), 1u);
  EXPECT_EQ(queued[0], scan[0]);
}

TEST(RemeasureQueue, DedupsUntilDrained) {
  RemeasureQueue q;
  const auto p1 = *net::Prefix::parse("10.0.0.0/24");
  const auto p2 = *net::Prefix::parse("10.0.1.0/24");
  EXPECT_TRUE(q.push(p1));
  EXPECT_FALSE(q.push(p1));  // already pending
  EXPECT_TRUE(q.push(p2));
  EXPECT_EQ(q.size(), 2u);

  const auto drained = q.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0], p1);
  EXPECT_EQ(drained[1], p2);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.push(p1));  // drain resets the pending set
}

TEST(RemeasureQueue, DropsAtCapacityAndCountsTheDrops) {
  RemeasureQueue q(/*max_pending=*/2);
  EXPECT_EQ(q.capacity(), 2u);
  const auto p1 = *net::Prefix::parse("10.0.0.0/24");
  const auto p2 = *net::Prefix::parse("10.0.1.0/24");
  const auto p3 = *net::Prefix::parse("10.0.2.0/24");
  EXPECT_TRUE(q.push(p1));
  EXPECT_TRUE(q.push(p2));
  EXPECT_FALSE(q.push(p3));  // at capacity: shed, not queued
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.size(), 2u);
  // A re-push of an already-pending prefix is a dedup, not a drop.
  EXPECT_FALSE(q.push(p1));
  EXPECT_EQ(q.dropped(), 1u);

  // Draining frees capacity; the shed prefix simply re-queues on its next
  // stale hit.
  EXPECT_EQ(q.drain().size(), 2u);
  EXPECT_TRUE(q.push(p3));
  EXPECT_EQ(q.dropped(), 1u);  // cumulative, not reset by drain
}

TEST(RemeasureQueue, DefaultCapacityComesFromEnv) {
  RemeasureQueue q;
  EXPECT_EQ(q.capacity(), 65536u);  // GEOLOC_SERVE_REMEASURE_CAP default
  EXPECT_EQ(q.dropped(), 0u);
}

// The TSan target: many readers hammering lookups while a writer hot-swaps
// versions. Each version encodes its number in the entry latitude, so a
// torn or mixed read would show up as version/latitude disagreement.
TEST(GeoService, HotSwapUnderConcurrentReaders) {
  auto v1 = make_snapshot({make_record("10.0.0.0/24", 1.0, 0.0f, 0.0)}, 1);
  auto v2 = make_snapshot({make_record("10.0.0.0/24", 2.0, 0.0f, 0.0)}, 2);
  GeoService service(v1);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  constexpr int kReaders = 4;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      const net::IPv4Address a = addr("10.0.0.5");
      while (!stop.load(std::memory_order_relaxed)) {
        const Answer ans = service.lookup(a, 0.0);
        if (!ans.found ||
            ans.location.lat_deg != static_cast<double>(ans.dataset_version)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int i = 0; i < 2000; ++i) {
    service.publish(i % 2 == 0 ? v2 : v1);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(service.stats().swaps, 2000u);
}

// End-to-end on the shared small scenario: compile a snapshot, serve it,
// let it go stale, plan + run the re-measurement campaign, refresh, diff.
TEST(GeoServiceEndToEnd, StalenessLoopRefreshesEntries) {
  const auto& s = geoloc::testing::small_scenario();

  publish::CompileOptions opts;
  opts.measured_at_s = 0.0;
  opts.ok_ttl_s = 100.0f;        // everything goes stale quickly
  opts.degraded_ttl_s = 100.0f;
  opts.fallback_ttl_s = 100.0f;
  const auto records = compile_entries(s, opts);
  ASSERT_GT(records.size(), 0u);
  EXPECT_EQ(records.size(), s.targets().size());

  auto v1 = make_snapshot(records, 1);
  GeoService service(v1);

  // Quality gate: the published snapshot must actually geolocate.
  const auto quality = eval::evaluate_snapshot(s, *v1);
  EXPECT_EQ(quality.covered, s.targets().size());
  EXPECT_LT(quality.median_error_km, 100.0);

  // Everything is stale at t=1000s; take a few prefixes through the loop.
  auto stale = service.stale_prefixes(/*now_s=*/1000.0);
  ASSERT_GT(stale.size(), 0u);
  stale.resize(std::min<std::size_t>(stale.size(), 5));

  const auto requests =
      plan_remeasurement(s, stale, /*vps_per_target=*/30, /*packets=*/3);
  ASSERT_GT(requests.size(), 0u);

  atlas::Platform platform(s.world(), s.latency(), {});
  atlas::CampaignExecutor executor(platform);
  const auto report = executor.execute(requests);
  EXPECT_GT(report.results.size(), 0u);

  publish::CompileOptions refresh_opts;
  refresh_opts.measured_at_s = 1000.0;
  refresh_opts.ok_ttl_s = 100.0f;
  const auto refreshed = refresh_entries(s, report, refresh_opts);
  ASSERT_GT(refreshed.size(), 0u);

  // v2 = v1 records overlaid with the refreshed ones (builder: last wins).
  publish::SnapshotBuilder b;
  b.add(records);
  b.add(refreshed);
  std::string error;
  auto v2 = publish::Snapshot::from_bytes(
      b.build(publish::SnapshotMeta{.dataset_version = 2,
                                    .created_at_s = 1000.0,
                                    .source = "refresh"}),
      &error);
  ASSERT_NE(v2, nullptr) << error;
  service.publish(v2);

  const auto diff = publish::diff_snapshots(*v1, *v2);
  EXPECT_EQ(diff.from_entries, v1->size());
  EXPECT_EQ(diff.to_entries, v2->size());
  EXPECT_EQ(diff.added, 0u);
  EXPECT_EQ(diff.removed, 0u);
  EXPECT_GE(diff.refreshed, refreshed.size());

  // Served answers now come from v2.
  const auto& world = s.world();
  const Answer a =
      service.lookup(world.host(s.targets().front()).addr, /*now_s=*/1000.0);
  EXPECT_TRUE(a.found);
  EXPECT_EQ(a.dataset_version, 2u);
}

}  // namespace
}  // namespace geoloc::serve
