#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace geoloc::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 42;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(HashLabel, DistinctLabelsDistinctHashes) {
  EXPECT_NE(hash_label("latency"), hash_label("catalog"));
  EXPECT_NE(hash_label("a"), hash_label("b"));
  EXPECT_EQ(hash_label("latency"), hash_label("latency"));
}

TEST(Pcg32, SameSeedSameSequence) {
  Pcg32 a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, DifferentSeedsDiverge) {
  Pcg32 a{1}, b{2};
  int diff = 0;
  for (int i = 0; i < 32; ++i) diff += a() != b();
  EXPECT_GT(diff, 24);
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 g{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = g.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg32, UniformMeanIsHalf) {
  Pcg32 g{11};
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += g.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Pcg32, UniformRangeRespectsBounds) {
  Pcg32 g{13};
  for (int i = 0; i < 1'000; ++i) {
    const double u = g.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Pcg32, BoundedStaysInBound) {
  Pcg32 g{17};
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(g.bounded(10), 10u);
}

TEST(Pcg32, BoundedCoversAllValues) {
  Pcg32 g{19};
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(g.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Pcg32, IndexHandlesLargeN) {
  Pcg32 g{23};
  const std::size_t n = std::size_t{1} << 33;
  for (int i = 0; i < 100; ++i) EXPECT_LT(g.index(n), n);
}

TEST(Pcg32, ChanceExtremes) {
  Pcg32 g{29};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(g.chance(0.0));
    EXPECT_TRUE(g.chance(1.0));
  }
}

TEST(Pcg32, ChanceMatchesProbability) {
  Pcg32 g{31};
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) hits += g.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Pcg32, NormalMomentsMatch) {
  Pcg32 g{37};
  constexpr int kN = 200'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = g.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Pcg32, ExponentialMeanAndPositivity) {
  Pcg32 g{41};
  constexpr int kN = 100'000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = g.exponential(2.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 2.5, 0.05);
}

TEST(Pcg32, LognormalMedian) {
  Pcg32 g{43};
  std::vector<double> xs;
  for (int i = 0; i < 50'001; ++i) xs.push_back(g.lognormal(0.5, 0.3));
  std::nth_element(xs.begin(), xs.begin() + 25'000, xs.end());
  EXPECT_NEAR(xs[25'000], std::exp(0.5), 0.03);
}

TEST(Pcg32, ParetoRespectsScale) {
  Pcg32 g{47};
  for (int i = 0; i < 10'000; ++i) EXPECT_GE(g.pareto(1.5, 2.0), 1.5);
}

TEST(RngStream, NamedForksAreIndependent) {
  RngStream root{99};
  auto a = root.fork("alpha").gen();
  auto b = root.fork("beta").gen();
  EXPECT_NE(a(), b());
}

TEST(RngStream, ForkIsOrderIndependent) {
  RngStream root{99};
  const auto a1 = root.fork("alpha").seed();
  (void)root.fork("gamma");
  const auto a2 = root.fork("alpha").seed();
  EXPECT_EQ(a1, a2);
}

TEST(RngStream, IndexedForksDiffer) {
  RngStream root{5};
  EXPECT_NE(root.fork("probe", 1).seed(), root.fork("probe", 2).seed());
  EXPECT_EQ(root.fork("probe", 1).seed(), root.fork("probe", 1).seed());
}

TEST(RngStream, DifferentRootsDiverge) {
  EXPECT_NE(RngStream{1}.fork("x").seed(), RngStream{2}.fork("x").seed());
}

}  // namespace
}  // namespace geoloc::util
