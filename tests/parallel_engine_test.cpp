// Correctness of the deterministic parallel engine (util/parallel.h):
// index coverage under contention, ordered reduction, nested use,
// exception propagation, and the thread-count override that the
// determinism suite (parallel_determinism_test.cpp) relies on.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace geoloc {
namespace {

/// Every test restores the environment-default worker count on exit so the
/// override never leaks into other tests in this binary.
class ParallelEngineTest : public ::testing::Test {
 protected:
  void TearDown() override { util::set_thread_count(0); }
};

TEST_F(ParallelEngineTest, ThreadCountOverrideAndRestore) {
  util::set_thread_count(3);
  EXPECT_EQ(util::thread_count(), 3u);
  util::set_thread_count(0);
  EXPECT_GE(util::thread_count(), 1u);
}

TEST_F(ParallelEngineTest, ForCoversEveryIndexExactlyOnce) {
  util::set_thread_count(8);
  constexpr std::size_t n = 100'000;
  std::vector<std::atomic<int>> hits(n);
  util::parallel_for(
      n,
      [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
      /*grain=*/7);
  std::size_t wrong = 0;
  for (const auto& h : hits) {
    if (h.load(std::memory_order_relaxed) != 1) ++wrong;
  }
  EXPECT_EQ(wrong, 0u);
}

TEST_F(ParallelEngineTest, ForHandlesEmptyAndSingleIndex) {
  util::set_thread_count(8);
  std::atomic<int> calls{0};
  util::parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  util::parallel_for(1, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST_F(ParallelEngineTest, MapCommitsResultsByIndex) {
  util::set_thread_count(8);
  constexpr std::size_t n = 50'000;
  const auto out = util::parallel_map<std::uint64_t>(
      n, [](std::size_t i) { return i * i + 1; }, /*grain=*/13);
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], i * i + 1) << "at index " << i;
  }
}

TEST_F(ParallelEngineTest, ReduceIsBitIdenticalAcrossWorkerCounts) {
  // Floating-point sums are association-sensitive; the engine pins the fold
  // order via the grain (a function of n only), so the result must be
  // bit-equal — not just approximately equal — for any worker count.
  constexpr std::size_t n = 200'000;
  const auto sum_at = [&](unsigned threads) {
    util::set_thread_count(threads);
    return util::parallel_reduce<double>(
        n, 0.0,
        [](std::size_t i) { return std::sin(static_cast<double>(i) * 1e-3); },
        std::plus<>{});
  };
  const double serial = sum_at(1);
  EXPECT_EQ(serial, sum_at(2));
  EXPECT_EQ(serial, sum_at(7));
  EXPECT_EQ(serial, sum_at(8));
}

TEST_F(ParallelEngineTest, ReduceFoldsInStrictIndexOrder) {
  // String concatenation is order-revealing: any chunk mis-ordering or
  // double-fold shows up immediately.
  util::set_thread_count(8);
  constexpr std::size_t n = 2'000;
  const auto concat = util::parallel_reduce<std::string>(
      n, std::string{},
      [](std::size_t i) { return std::to_string(i % 10); },
      [](std::string a, const std::string& b) { return std::move(a) += b; },
      /*grain=*/3);
  std::string expected;
  for (std::size_t i = 0; i < n; ++i) expected += std::to_string(i % 10);
  EXPECT_EQ(concat, expected);
}

TEST_F(ParallelEngineTest, NestedParallelForRunsInline) {
  util::set_thread_count(4);
  std::atomic<int> total{0};
  util::parallel_for(
      4,
      [&](std::size_t) {
        // A worker issuing parallel work must not deadlock the pool: the
        // inner loop runs inline on the worker.
        util::parallel_for(1'000, [&](std::size_t) {
          total.fetch_add(1, std::memory_order_relaxed);
        });
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 4'000);
}

TEST_F(ParallelEngineTest, ExceptionPropagatesAndPoolSurvives) {
  util::set_thread_count(8);
  EXPECT_THROW(
      util::parallel_for(
          10'000,
          [](std::size_t i) {
            if (i == 3'777) throw std::runtime_error("boom");
          },
          /*grain=*/1),
      std::runtime_error);
  // The pool must be reusable after a failed job.
  std::atomic<int> calls{0};
  util::parallel_for(1'000, [&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(calls.load(), 1'000);
}

TEST_F(ParallelEngineTest, ManySmallJobsBackToBack) {
  // Stresses job hand-off (generation publishing): a stale worker waking
  // into a later job would double-run or skip chunks.
  util::set_thread_count(8);
  for (int job = 0; job < 200; ++job) {
    std::atomic<int> calls{0};
    util::parallel_for(
        64,
        [&](std::size_t) { calls.fetch_add(1, std::memory_order_relaxed); },
        /*grain=*/1);
    ASSERT_EQ(calls.load(), 64) << "job " << job;
  }
}

TEST_F(ParallelEngineTest, DefaultGrainDependsOnlyOnN) {
  // The grain drives the reduce association; it must never incorporate the
  // worker count.
  EXPECT_EQ(util::detail::default_grain(100), 1u);
  EXPECT_EQ(util::detail::default_grain(10'000), 64u);
  EXPECT_EQ(util::detail::default_grain(1'000'000), 1'024u);
  util::set_thread_count(2);
  EXPECT_EQ(util::detail::default_grain(10'000), 64u);
}

}  // namespace
}  // namespace geoloc
