// Snapshot format: write -> read roundtrip (property-style, multiple
// seeds), determinism, and the corruption battery — bad magic, bad CRCs,
// truncation at every region, semantic invalidity. A rejected file must
// produce a clean error, never UB (the suite runs under the sanitize and
// tsan presets).
#include "publish/snapshot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/rng.h"

namespace geoloc::publish {
namespace {

using util::Pcg32;

Record random_record(Pcg32& gen) {
  Record r;
  const int len = static_cast<int>(8 + gen.bounded(25));  // 8..32
  r.prefix = net::Prefix{net::IPv4Address{gen() | (gen.bounded(223) << 24)},
                         len};
  r.location.lat_deg = gen.uniform(-90.0, 90.0);
  r.location.lon_deg = gen.uniform(-180.0, 180.0);
  r.method = static_cast<Method>(gen.bounded(4));
  r.tier = static_cast<core::CbgVerdict>(gen.bounded(3));
  r.confidence_radius_km = static_cast<float>(gen.uniform(0.0, 5000.0));
  r.ttl_s = static_cast<float>(gen.uniform(0.0, 1e6));
  r.measured_at_s = gen.uniform(0.0, 1e8);
  const char* provenances[] = {"", "cbg/all-vps:obs=10723",
                               "geodb/IPinfo:geofeed", "street-level:tier=3",
                               "two-step:first=100,region-vps=17"};
  r.provenance = provenances[gen.bounded(5)];
  return r;
}

std::vector<Record> random_records(std::uint64_t seed, std::size_t n) {
  Pcg32 gen(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) records.push_back(random_record(gen));
  return records;
}

std::vector<std::byte> build_bytes(const std::vector<Record>& records,
                                   const SnapshotMeta& meta) {
  SnapshotBuilder b;
  b.add(records);
  return b.build(meta);
}

SnapshotMeta test_meta() {
  return SnapshotMeta{.dataset_version = 7,
                      .created_at_s = 123456.5,
                      .source = "unit-test campaign"};
}

/// Re-stamp both CRCs after deliberately corrupting payload bytes, so the
/// semantic validators (not the checksum) are what rejects the file.
void restamp_crcs(std::vector<std::byte>& bytes) {
  const std::uint32_t payload =
      util::crc32(std::span<const std::byte>(bytes).subspan(kHeaderBytes));
  for (int i = 0; i < 4; ++i) {
    bytes[48 + i] = static_cast<std::byte>((payload >> (8 * i)) & 0xFF);
  }
  const std::uint32_t header =
      util::crc32(std::span<const std::byte>(bytes.data(), 52));
  for (int i = 0; i < 4; ++i) {
    bytes[52 + i] = static_cast<std::byte>((header >> (8 * i)) & 0xFF);
  }
}

TEST(SnapshotFormat, RoundtripIsBitIdenticalAcrossSeeds) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 20230415ULL, 999ULL, 7ULL}) {
    const auto records = random_records(seed, 200);
    const SnapshotMeta meta = test_meta();
    std::string error;
    const auto snap = Snapshot::from_bytes(build_bytes(records, meta), &error);
    ASSERT_NE(snap, nullptr) << "seed " << seed << ": " << error;

    EXPECT_EQ(snap->dataset_version(), meta.dataset_version);
    EXPECT_EQ(snap->created_at_s(), meta.created_at_s);
    EXPECT_EQ(snap->source(), meta.source);

    // The builder dedups by prefix (last wins); reconstruct the expectation.
    std::vector<const Record*> expected;
    for (const Record& r : records) {
      bool replaced = false;
      for (auto& e : expected) {
        if (e->prefix == r.prefix) {
          e = &r;
          replaced = true;
          break;
        }
      }
      if (!replaced) expected.push_back(&r);
    }
    ASSERT_EQ(snap->size(), expected.size()) << "seed " << seed;

    for (std::size_t i = 0; i < snap->size(); ++i) {
      const SnapshotEntry e = snap->entry(i);
      const Record* want = nullptr;
      for (const Record* r : expected) {
        if (r->prefix == e.prefix) {
          want = r;
          break;
        }
      }
      ASSERT_NE(want, nullptr);
      EXPECT_EQ(e.location.lat_deg, want->location.lat_deg);  // bit-exact
      EXPECT_EQ(e.location.lon_deg, want->location.lon_deg);
      EXPECT_EQ(e.method, want->method);
      EXPECT_EQ(e.tier, want->tier);
      EXPECT_EQ(e.confidence_radius_km, want->confidence_radius_km);
      EXPECT_EQ(e.ttl_s, want->ttl_s);
      EXPECT_EQ(e.measured_at_s, want->measured_at_s);
      EXPECT_EQ(e.provenance, want->provenance);
      if (i > 0) {
        const SnapshotEntry prev = snap->entry(i - 1);
        EXPECT_TRUE(prev.prefix.network() < e.prefix.network() ||
                    (prev.prefix.network() == e.prefix.network() &&
                     prev.prefix.length() < e.prefix.length()))
            << "entries must be strictly sorted";
      }
    }
  }
}

TEST(SnapshotFormat, BuildIsDeterministic) {
  const auto records = random_records(5, 64);
  const auto a = build_bytes(records, test_meta());
  const auto b = build_bytes(records, test_meta());
  EXPECT_EQ(a, b);
}

TEST(SnapshotFormat, DuplicatePrefixLastAddWins) {
  Record first;
  first.prefix = *net::Prefix::parse("10.0.0.0/24");
  first.location = {1.0, 1.0};
  first.provenance = "first";
  Record second = first;
  second.location = {2.0, 2.0};
  second.provenance = "second";
  SnapshotBuilder b;
  b.add(first);
  b.add(second);
  const auto snap = Snapshot::from_bytes(b.build(test_meta()));
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->size(), 1u);
  EXPECT_EQ(snap->entry(0).location.lat_deg, 2.0);
  EXPECT_EQ(snap->entry(0).provenance, "second");
}

TEST(SnapshotFormat, FileRoundtrip) {
  const auto records = random_records(11, 50);
  SnapshotBuilder b;
  b.add(records);
  const std::string path =
      ::testing::TempDir() + "/geoloc-snapshot-roundtrip.bin";
  std::string error;
  ASSERT_TRUE(b.write_file(path, test_meta(), &error)) << error;
  const auto snap = Snapshot::load(path, &error);
  ASSERT_NE(snap, nullptr) << error;
  EXPECT_EQ(snap->size(), 50u);
  const auto bytes = b.build(test_meta());
  EXPECT_EQ(snap->payload_crc(),
            util::crc32(std::span<const std::byte>(bytes).subspan(
                kHeaderBytes)));
  std::remove(path.c_str());
}

TEST(SnapshotFormat, FindAnswersLongestPrefix) {
  SnapshotBuilder b;
  Record wide;
  wide.prefix = *net::Prefix::parse("10.0.0.0/8");
  wide.location = {10.0, 0.0};
  Record narrow;
  narrow.prefix = *net::Prefix::parse("10.1.2.0/24");
  narrow.location = {20.0, 0.0};
  b.add(wide);
  b.add(narrow);
  const auto snap = Snapshot::from_bytes(b.build(test_meta()));
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->find(*net::IPv4Address::parse("10.1.2.3"))->location.lat_deg,
            20.0);
  EXPECT_EQ(snap->find(*net::IPv4Address::parse("10.9.9.9"))->location.lat_deg,
            10.0);
  EXPECT_FALSE(snap->find(*net::IPv4Address::parse("11.0.0.1")).has_value());
}

TEST(SnapshotFormat, EmptySnapshotIsValid) {
  SnapshotBuilder b;
  std::string error;
  const auto snap = Snapshot::from_bytes(b.build(test_meta()), &error);
  ASSERT_NE(snap, nullptr) << error;
  EXPECT_TRUE(snap->empty());
  EXPECT_FALSE(snap->find(net::IPv4Address{1}).has_value());
}

// -- corruption battery ----------------------------------------------------

class SnapshotCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    bytes_ = build_bytes(random_records(3, 40), test_meta());
  }

  void expect_rejected(std::vector<std::byte> bytes,
                       const char* what) {
    std::string error;
    const auto snap = Snapshot::from_bytes(std::move(bytes), &error);
    EXPECT_EQ(snap, nullptr) << what;
    EXPECT_FALSE(error.empty()) << what;
  }

  std::vector<std::byte> bytes_;
};

TEST_F(SnapshotCorruption, BadMagic) {
  auto bytes = bytes_;
  bytes[0] = static_cast<std::byte>('X');
  expect_rejected(std::move(bytes), "magic");
}

TEST_F(SnapshotCorruption, UnsupportedFormatVersion) {
  auto bytes = bytes_;
  bytes[4] = std::byte{0x99};
  restamp_crcs(bytes);
  expect_rejected(std::move(bytes), "format version");
}

TEST_F(SnapshotCorruption, HeaderBitFlip) {
  auto bytes = bytes_;
  bytes[17] = static_cast<std::byte>(static_cast<std::uint8_t>(bytes[17]) ^ 1);
  expect_rejected(std::move(bytes), "header CRC");
}

TEST_F(SnapshotCorruption, PayloadBitFlip) {
  auto bytes = bytes_;
  bytes[kHeaderBytes + 9] =
      static_cast<std::byte>(static_cast<std::uint8_t>(bytes[kHeaderBytes + 9]) ^
                             0x40);
  expect_rejected(std::move(bytes), "payload CRC");
}

TEST_F(SnapshotCorruption, TruncationAtEveryRegion) {
  // Header cut short, entries cut mid-record, pool missing its tail, and
  // the classic one-byte-short copy.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, kHeaderBytes - 1, kHeaderBytes + 17,
        bytes_.size() / 2, bytes_.size() - 1}) {
    auto bytes = bytes_;
    bytes.resize(keep);
    expect_rejected(std::move(bytes),
                    ("truncated to " + std::to_string(keep)).c_str());
  }
}

TEST_F(SnapshotCorruption, TrailingGarbage) {
  auto bytes = bytes_;
  bytes.push_back(std::byte{0});
  expect_rejected(std::move(bytes), "trailing byte");
}

TEST_F(SnapshotCorruption, HostBitsSetInPrefix) {
  auto bytes = bytes_;
  // Entry 0's network field: force host bits below a /24 length.
  bytes[kHeaderBytes + 0] = std::byte{0xFF};
  bytes[kHeaderBytes + 4] = std::byte{24};
  restamp_crcs(bytes);
  expect_rejected(std::move(bytes), "host bits");
}

TEST_F(SnapshotCorruption, PrefixLengthOutOfRange) {
  auto bytes = bytes_;
  bytes[kHeaderBytes + 4] = std::byte{33};
  restamp_crcs(bytes);
  expect_rejected(std::move(bytes), "prefix length");
}

TEST_F(SnapshotCorruption, UnknownMethodAndTier) {
  auto bytes = bytes_;
  bytes[kHeaderBytes + 5] = std::byte{200};
  restamp_crcs(bytes);
  expect_rejected(std::move(bytes), "method");

  bytes = bytes_;
  bytes[kHeaderBytes + 6] = std::byte{200};
  restamp_crcs(bytes);
  expect_rejected(std::move(bytes), "tier");
}

TEST_F(SnapshotCorruption, ProvenanceOutOfPoolRange) {
  auto bytes = bytes_;
  for (int i = 0; i < 4; ++i) bytes[kHeaderBytes + 44 + i] = std::byte{0xFF};
  restamp_crcs(bytes);
  expect_rejected(std::move(bytes), "provenance range");
}

TEST_F(SnapshotCorruption, UnsortedEntriesRejected) {
  ASSERT_GE(bytes_.size(), kHeaderBytes + 2 * kEntryStride);
  auto bytes = bytes_;
  // Swap the first two 48-byte entry blocks, breaking strict ordering.
  for (std::size_t i = 0; i < kEntryStride; ++i) {
    std::swap(bytes[kHeaderBytes + i], bytes[kHeaderBytes + kEntryStride + i]);
  }
  restamp_crcs(bytes);
  expect_rejected(std::move(bytes), "unsorted");
}

TEST_F(SnapshotCorruption, EntryCountOverflowRejected) {
  auto bytes = bytes_;
  for (int i = 0; i < 8; ++i) bytes[16 + i] = std::byte{0xFF};
  restamp_crcs(bytes);
  expect_rejected(std::move(bytes), "entry count overflow");
}

TEST_F(SnapshotCorruption, MissingFile) {
  std::string error;
  EXPECT_EQ(Snapshot::load(::testing::TempDir() + "/does-not-exist.bin",
                           &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

// -- staleness boundary semantics -------------------------------------------

TEST(SnapshotStaleness, BoundaryIsInclusive) {
  SnapshotEntry e;
  e.measured_at_s = 1'000.0;
  e.ttl_s = 500.0f;
  EXPECT_DOUBLE_EQ(e.stale_horizon_s(), 1'500.0);
  EXPECT_FALSE(e.stale_at(1'499.999));
  // Exactly at the horizon: STALE. The longitudinal loop measures at epoch
  // boundaries with ttl == k * epoch_s; a strict `>` here (the old
  // behaviour) made every such entry forever "fresh" at the instant it was
  // due and TTL-driven re-measurement never fired.
  EXPECT_TRUE(e.stale_at(1'500.0));
  EXPECT_TRUE(e.stale_at(1'500.001));
}

TEST(SnapshotStaleness, ZeroTtlNeverGoesStale) {
  SnapshotEntry e;
  e.measured_at_s = 0.0;
  e.ttl_s = 0.0f;
  EXPECT_FALSE(e.stale_at(0.0));
  EXPECT_FALSE(e.stale_at(1e12));
  EXPECT_EQ(e.stale_horizon_s(), std::numeric_limits<double>::infinity());
}

TEST(SnapshotStaleness, ExactBoundaryAtSimulatedYearsOfUptime) {
  // Regression for the timestamp-precision audit: measured_at_s is f64
  // end-to-end (entry, wire, checkpoint), so epoch arithmetic stays exact
  // far past f32's 2^24 integer range. Twenty simulated years in, a
  // 30-day TTL must still flip exactly at the boundary, not an ULP early
  // or late.
  const double twenty_years_s = 20.0 * 365.0 * 86'400.0;  // 6.3072e8
  const float month_s = 30.0f * 86'400.0f;                // 2.592e6, f32-exact
  SnapshotEntry e;
  e.measured_at_s = twenty_years_s;
  e.ttl_s = month_s;
  const double horizon = twenty_years_s + 2'592'000.0;
  EXPECT_DOUBLE_EQ(e.stale_horizon_s(), horizon);
  EXPECT_FALSE(e.stale_at(horizon - 1.0));
  EXPECT_FALSE(e.stale_at(std::nextafter(horizon, 0.0)));
  EXPECT_TRUE(e.stale_at(horizon));
}

TEST(SnapshotStaleness, TtlQuantisesAtFloatIntegerLimit) {
  // ttl_s IS f32 in the 48-byte wire entry: durations beyond 2^24 s
  // (~194 days) quantise to the nearest representable float. This is a
  // documented format property — the TTL ladder tops out at 30 days — and
  // the quantisation must at least be consistent: the entry goes stale at
  // the horizon computed from the *stored* (quantised) value.
  const float quantised = 16'777'217.0f;  // 2^24 + 1 rounds to 2^24
  EXPECT_EQ(quantised, 16'777'216.0f);
  SnapshotEntry e;
  e.measured_at_s = 0.0;
  e.ttl_s = quantised;
  EXPECT_TRUE(e.stale_at(16'777'216.0));
  EXPECT_FALSE(e.stale_at(16'777'215.0));

  // And the stored value survives the disk roundtrip bit-exactly.
  Record r;
  r.prefix = *net::Prefix::parse("10.0.0.0/24");
  r.ttl_s = quantised;
  r.measured_at_s = 6.3072e8;
  SnapshotBuilder b;
  b.add(r);
  std::string error;
  const auto s = Snapshot::from_bytes(b.build(test_meta()), &error);
  ASSERT_NE(s, nullptr) << error;
  EXPECT_EQ(s->entry(0).ttl_s, quantised);
  EXPECT_DOUBLE_EQ(s->entry(0).measured_at_s, 6.3072e8);
}

}  // namespace
}  // namespace geoloc::publish
