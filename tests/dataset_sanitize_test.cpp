// Tests of the Section 4.3 sanitiser: the speed-of-Internet mesh filter
// must remove exactly the misgeolocated hosts and nothing else.
#include "dataset/sanitize.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "test_scenario.h"

namespace geoloc::dataset {
namespace {

using geoloc::testing::small_scenario;

TEST(SanitizeAnchors, RemovesExactlyTheMisgeolocated) {
  const auto& s = small_scenario();
  const auto& result = s.anchor_sanitisation();
  EXPECT_EQ(result.removed.size(),
            static_cast<std::size_t>(s.config().catalog.anchors_misgeolocated));
  for (sim::HostId id : result.removed) {
    EXPECT_TRUE(s.world().host(id).misgeolocated)
        << "sanitiser removed a correctly geolocated anchor";
  }
  for (sim::HostId id : result.kept) {
    EXPECT_FALSE(s.world().host(id).misgeolocated);
  }
}

TEST(SanitizeProbes, RemovesExactlyTheMisgeolocated) {
  const auto& s = small_scenario();
  const auto& result = s.probe_sanitisation();
  EXPECT_EQ(result.removed.size(),
            static_cast<std::size_t>(s.config().catalog.probes_misgeolocated));
  for (sim::HostId id : result.removed) {
    EXPECT_TRUE(s.world().host(id).misgeolocated);
  }
}

TEST(Sanitize, KeptPlusRemovedIsInput) {
  const auto& s = small_scenario();
  const auto& r = s.anchor_sanitisation();
  std::unordered_set<sim::HostId> all(r.kept.begin(), r.kept.end());
  all.insert(r.removed.begin(), r.removed.end());
  EXPECT_EQ(all.size(), s.catalog().anchors.size());
}

TEST(Sanitize, ViolationsWereObserved) {
  const auto& s = small_scenario();
  EXPECT_GT(s.anchor_sanitisation().violating_pairs, 0u);
  EXPECT_GT(s.probe_sanitisation().violating_pairs, 0u);
}

TEST(Sanitize, CleanInputIsUntouched) {
  // A catalogue without misgeolocations must survive unharmed.
  auto cfg = scenario::small_config(/*seed=*/55);
  cfg.cache_dir = "";
  cfg.catalog.anchors_misgeolocated = 0;
  cfg.catalog.probes_misgeolocated = 0;
  cfg.build_web = false;
  const scenario::Scenario s = scenario::Scenario::without_web(cfg);
  EXPECT_TRUE(s.anchor_sanitisation().removed.empty());
  EXPECT_TRUE(s.probe_sanitisation().removed.empty());
  EXPECT_EQ(s.anchor_sanitisation().violating_pairs, 0u);
}

TEST(Sanitize, StricterSoiRemovesMore) {
  // With an unphysically low assumed speed, even honest pairs violate.
  const auto& s = small_scenario();
  SanitizeConfig strict;
  strict.soi_km_per_ms = 10.0;  // absurd: 10 km/ms
  const auto result =
      sanitize_anchors(s.latency(), s.catalog().anchors, strict);
  EXPECT_GT(result.removed.size(),
            static_cast<std::size_t>(s.config().catalog.anchors_misgeolocated));
}

TEST(Sanitize, IterativeRemovalIsDeterministic) {
  const auto& s = small_scenario();
  const auto r1 = sanitize_anchors(s.latency(), s.catalog().anchors);
  const auto r2 = sanitize_anchors(s.latency(), s.catalog().anchors);
  EXPECT_EQ(r1.removed, r2.removed);
  EXPECT_EQ(r1.kept, r2.kept);
}

}  // namespace
}  // namespace geoloc::dataset
