#include "geo/geodesy.h"

#include <gtest/gtest.h>

#include <vector>

#include "geo/constants.h"
#include "util/rng.h"

namespace geoloc::geo {
namespace {

constexpr GeoPoint kParis{48.8566, 2.3522};
constexpr GeoPoint kNewYork{40.7128, -74.0060};
constexpr GeoPoint kSydney{-33.8688, 151.2093};
constexpr GeoPoint kToulouse{43.6047, 1.4442};

TEST(GeoPoint, Validation) {
  EXPECT_TRUE(kParis.valid());
  EXPECT_FALSE((GeoPoint{91.0, 0.0}).valid());
  EXPECT_FALSE((GeoPoint{0.0, 180.0}).valid());
  EXPECT_TRUE((GeoPoint{0.0, -180.0}).valid());
}

TEST(GeoPoint, NormalizeLon) {
  EXPECT_DOUBLE_EQ(normalize_lon(190.0), -170.0);
  EXPECT_DOUBLE_EQ(normalize_lon(-185.0), 175.0);
  EXPECT_DOUBLE_EQ(normalize_lon(45.0), 45.0);
}

TEST(Distance, KnownCityPairs) {
  // Reference distances (great circle, spherical Earth).
  EXPECT_NEAR(distance_km(kParis, kNewYork), 5837.0, 25.0);
  EXPECT_NEAR(distance_km(kParis, kToulouse), 589.0, 10.0);
  EXPECT_NEAR(distance_km(kNewYork, kSydney), 15990.0, 60.0);
}

TEST(Distance, IdentityAndSymmetry) {
  EXPECT_DOUBLE_EQ(distance_km(kParis, kParis), 0.0);
  EXPECT_DOUBLE_EQ(distance_km(kParis, kSydney), distance_km(kSydney, kParis));
}

TEST(Distance, AntipodalIsHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, -180.0 + 1e-9};
  EXPECT_NEAR(distance_km(a, b), kPi * kEarthRadiusKm, 1.0);
}

TEST(Bearing, CardinalDirections) {
  const GeoPoint origin{0.0, 0.0};
  EXPECT_NEAR(initial_bearing_deg(origin, GeoPoint{1.0, 0.0}), 0.0, 1e-9);
  EXPECT_NEAR(initial_bearing_deg(origin, GeoPoint{0.0, 1.0}), 90.0, 1e-9);
  EXPECT_NEAR(initial_bearing_deg(origin, GeoPoint{-1.0, 0.0}), 180.0, 1e-9);
  EXPECT_NEAR(initial_bearing_deg(origin, GeoPoint{0.0, -1.0}), 270.0, 1e-9);
}

TEST(Destination, RoundTripsWithDistanceAndBearing) {
  auto gen = util::Pcg32{123};
  for (int i = 0; i < 500; ++i) {
    const GeoPoint origin{gen.uniform(-80.0, 80.0), gen.uniform(-179.0, 179.0)};
    const double bearing = gen.uniform(0.0, 360.0);
    const double dist = gen.uniform(0.1, 5'000.0);
    const GeoPoint dest = destination(origin, bearing, dist);
    EXPECT_NEAR(distance_km(origin, dest), dist, dist * 1e-9 + 1e-6)
        << "origin=" << to_string(origin) << " bearing=" << bearing;
  }
}

TEST(Destination, ZeroDistanceIsIdentity) {
  const GeoPoint dest = destination(kParis, 123.0, 0.0);
  EXPECT_NEAR(dest.lat_deg, kParis.lat_deg, 1e-12);
  EXPECT_NEAR(dest.lon_deg, kParis.lon_deg, 1e-12);
}

TEST(Destination, CrossesAntimeridianCleanly) {
  const GeoPoint fiji{-18.0, 179.5};
  const GeoPoint east = destination(fiji, 90.0, 200.0);
  EXPECT_TRUE(east.valid());
  EXPECT_LT(east.lon_deg, 0.0);  // wrapped into the western hemisphere
}

TEST(Midpoint, IsEquidistant) {
  const GeoPoint mid = midpoint(kParis, kNewYork);
  EXPECT_NEAR(distance_km(mid, kParis), distance_km(mid, kNewYork), 1e-6);
}

TEST(Centroid, EmptyAndSingle) {
  EXPECT_EQ(centroid({}), (GeoPoint{}));
  const std::vector<GeoPoint> one{kSydney};
  const GeoPoint c = centroid(one);
  EXPECT_NEAR(c.lat_deg, kSydney.lat_deg, 1e-9);
  EXPECT_NEAR(c.lon_deg, kSydney.lon_deg, 1e-9);
}

TEST(Centroid, SymmetricPointsAverageOut) {
  const std::vector<GeoPoint> pts{{10.0, 20.0}, {-10.0, 20.0}};
  const GeoPoint c = centroid(pts);
  EXPECT_NEAR(c.lat_deg, 0.0, 1e-9);
  EXPECT_NEAR(c.lon_deg, 20.0, 1e-9);
}

TEST(Centroid, StaysInsideCluster) {
  auto gen = util::Pcg32{9};
  for (int trial = 0; trial < 50; ++trial) {
    const GeoPoint center{gen.uniform(-60.0, 60.0), gen.uniform(-170.0, 170.0)};
    std::vector<GeoPoint> pts;
    for (int i = 0; i < 20; ++i) {
      pts.push_back(
          destination(center, gen.uniform(0.0, 360.0), gen.uniform(0.0, 50.0)));
    }
    EXPECT_LT(distance_km(centroid(pts), center), 50.0);
  }
}

TEST(Constants, SpeedConversionsAreConsistent) {
  // 100 km at 2/3 c -> RTT -> back to distance.
  const double rtt = distance_to_min_rtt_ms(100.0);
  EXPECT_NEAR(rtt_to_max_distance_km(rtt, kSoiTwoThirdsKmPerMs), 100.0, 1e-9);
  // 4/9 c gives a smaller radius for the same RTT.
  EXPECT_LT(rtt_to_max_distance_km(rtt, kSoiFourNinthsKmPerMs), 100.0);
}

TEST(Constants, SoiViolationDetection) {
  const double rtt = distance_to_min_rtt_ms(1'000.0);
  EXPECT_FALSE(violates_soi(rtt * 1.01, 1'000.0));
  EXPECT_TRUE(violates_soi(rtt * 0.99, 1'000.0));
}

TEST(ToString, FormatsLatLon) {
  EXPECT_EQ(to_string(GeoPoint{48.8566, 2.3522}), "48.8566,2.3522");
}

}  // namespace
}  // namespace geoloc::geo
