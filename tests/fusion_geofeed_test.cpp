// The strict geofeed parser: accept matrix, typed-defect matrix,
// quarantine behaviour, and a seeded-garbage fuzz pass. The parser is the
// trust boundary between operator-published text and the fusion engine,
// so every rejection must be typed and no byte sequence may crash it.
#include "fusion/geofeed.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace geoloc::fusion {
namespace {

TEST(GeofeedParse, AcceptsWellFormedLinesAndSkipsCommentsAndBlanks) {
  const std::string text =
      "# operator feed\n"
      "\n"
      "192.0.2.0/24,AT,Vienna,48.208500,16.373800\n"
      "\r\n"
      "198.51.100.0/24,US,Denver,39.739200,-104.990300\r\n"
      "# trailing comment\n";
  const GeofeedParseResult r = parse_geofeed(text);
  EXPECT_FALSE(r.quarantined);
  EXPECT_TRUE(r.defects.empty());
  ASSERT_EQ(r.entries.size(), 2u);
  EXPECT_EQ(r.entries[0].prefix.to_string(), "192.0.2.0/24");
  EXPECT_EQ(r.entries[0].country, "AT");
  EXPECT_EQ(r.entries[0].city, "Vienna");
  EXPECT_NEAR(r.entries[0].location.lat_deg, 48.2085, 1e-9);
  EXPECT_NEAR(r.entries[1].location.lon_deg, -104.9903, 1e-9);
}

TEST(GeofeedParse, LastLineWithoutNewlineIsParsed) {
  const GeofeedParseResult r =
      parse_geofeed("192.0.2.0/24,AT,Vienna,48.2,16.37");
  ASSERT_EQ(r.entries.size(), 1u);
}

struct DefectCase {
  const char* line;
  GeofeedError expected;
};

TEST(GeofeedParse, EveryDefectIsTyped) {
  const DefectCase cases[] = {
      {"192.0.2.0/24,AT,Vienna,48.2", GeofeedError::FieldCount},
      {"192.0.2.0/24,AT,Vienna,48.2,16.3,extra", GeofeedError::FieldCount},
      {"not-a-prefix,AT,Vienna,48.2,16.3", GeofeedError::BadPrefix},
      {"192.0.2.0,AT,Vienna,48.2,16.3", GeofeedError::BadPrefix},
      {"192.0.2.0/33,AT,Vienna,48.2,16.3", GeofeedError::BadPrefix},
      {"192.0.2.0/24x,AT,Vienna,48.2,16.3", GeofeedError::BadPrefix},
      {"192.0.2.7/24,AT,Vienna,48.2,16.3", GeofeedError::HostBitsSet},
      {"192.0.0.0/6,AT,Vienna,48.2,16.3", GeofeedError::PrefixTooWide},
      {"192.0.2.0/24,,Vienna,48.2,16.3", GeofeedError::EmptyField},
      {"192.0.2.0/24,AT,,48.2,16.3", GeofeedError::EmptyField},
      {"192.0.2.0/24,AT,Vienna,48.2x,16.3", GeofeedError::BadLatitude},
      {"192.0.2.0/24,AT,Vienna,,16.3", GeofeedError::BadLatitude},
      {"192.0.2.0/24,AT,Vienna,91.0,16.3", GeofeedError::BadLatitude},
      {"192.0.2.0/24,AT,Vienna,-90.5,16.3", GeofeedError::BadLatitude},
      {"192.0.2.0/24,AT,Vienna,48.2,16.3 ", GeofeedError::BadLongitude},
      {"192.0.2.0/24,AT,Vienna,48.2,181.0", GeofeedError::BadLongitude},
      {"192.0.2.0/24,AT,Vienna,48.2,nan", GeofeedError::BadLongitude},
  };
  for (const DefectCase& c : cases) {
    const GeofeedParseResult r = parse_geofeed(c.line);
    EXPECT_TRUE(r.entries.empty()) << c.line;
    ASSERT_EQ(r.defects.size(), 1u) << c.line;
    EXPECT_EQ(r.defects[0].error, c.expected)
        << c.line << " -> " << to_string(r.defects[0].error);
    EXPECT_EQ(r.defects[0].line, 1u);
  }
}

TEST(GeofeedParse, DefectLinesCarryTheirLineNumbers) {
  const GeofeedParseResult r = parse_geofeed(
      "# header\n"
      "192.0.2.0/24,AT,Vienna,48.2,16.3\n"
      "garbage\n"
      "198.51.100.0/24,US,Denver,39.7,-104.9\n"
      "192.0.2.0/24,AT,Vienna,95,16.3\n");
  ASSERT_EQ(r.defects.size(), 2u);
  EXPECT_EQ(r.defects[0].line, 3u);
  EXPECT_EQ(r.defects[1].line, 5u);
  EXPECT_EQ(r.entries.size(), 2u);
}

TEST(GeofeedParse, MostlyGarbageFeedIsQuarantinedWholesale) {
  std::string text;
  for (int i = 0; i < 6; ++i) {
    text += "192.0." + std::to_string(i) + ".0/24,AT,Vienna,48.2,16.3\n";
  }
  for (int i = 0; i < 6; ++i) text += "garbage line " + std::to_string(i) + "\n";
  const GeofeedParseResult r = parse_geofeed(text);
  EXPECT_TRUE(r.quarantined);
  // Quarantine must not leak the "valid" half.
  EXPECT_TRUE(r.entries.empty());
  EXPECT_EQ(r.defects.size(), 6u);
}

TEST(GeofeedParse, SmallFeedsAreNotQuarantinedByASingleTypo) {
  const GeofeedParseResult r = parse_geofeed(
      "192.0.2.0/24,AT,Vienna,48.2,16.3\n"
      "garbage\n");
  EXPECT_FALSE(r.quarantined);
  EXPECT_EQ(r.entries.size(), 1u);
  EXPECT_EQ(r.defects.size(), 1u);
}

TEST(GeofeedParse, LineBombIsCappedAndQuarantined) {
  GeofeedLimits limits;
  limits.max_lines = 100;
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "10.0." + std::to_string(i % 250) + ".0/24,XX,Y,1.0,1.0\n";
  }
  const GeofeedParseResult r = parse_geofeed(text, limits);
  EXPECT_TRUE(r.quarantined);
  EXPECT_TRUE(r.entries.empty());
}

TEST(GeofeedParse, SeededGarbageNeverCrashesAndNeverMisparses) {
  std::mt19937 rng(20230805);
  const char alphabet[] = "0123456789./,-+eE#\r\n abcXYZ\t\0\xff";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng() % 200);
    for (int i = 0; i < len; ++i) {
      text.push_back(alphabet[rng() % (sizeof alphabet - 1)]);
    }
    const GeofeedParseResult r = parse_geofeed(text);
    // Every accepted entry must satisfy the documented invariants.
    for (const GeofeedEntry& e : r.entries) {
      EXPECT_GE(e.prefix.length(), 8);
      EXPECT_LE(e.prefix.length(), 32);
      EXPECT_GE(e.location.lat_deg, -90.0);
      EXPECT_LE(e.location.lat_deg, 90.0);
      EXPECT_GE(e.location.lon_deg, -180.0);
      EXPECT_LE(e.location.lon_deg, 180.0);
      EXPECT_FALSE(e.country.empty());
      EXPECT_FALSE(e.city.empty());
    }
  }
}

TEST(GeofeedParse, MutatedValidLinesAreAcceptedOrTypedNeverMangled) {
  std::mt19937 rng(4242);
  const std::string base = "192.0.2.0/24,AT,Vienna,48.208500,16.373800";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string line = base;
    // 1-3 random single-byte mutations.
    const int edits = 1 + static_cast<int>(rng() % 3);
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng() % line.size();
      line[pos] = static_cast<char>(rng() % 256);
    }
    const GeofeedParseResult r = parse_geofeed(line);
    // A mutation can inject '\n' (splitting the line), '#' or '\r' (making
    // a line skippable), so the exact count varies — but a handful of
    // single-byte edits can never fan out past the edit count + 1, and
    // every surviving entry still obeys the invariants.
    EXPECT_LE(r.data_lines(), static_cast<std::size_t>(edits) + 1) << line;
    for (const GeofeedEntry& e : r.entries) {
      EXPECT_GE(e.prefix.length(), 8);
      EXPECT_GE(e.location.lat_deg, -90.0);
      EXPECT_LE(e.location.lat_deg, 90.0);
    }
  }
}

}  // namespace
}  // namespace geoloc::fusion
