// Multi-epoch kill-and-resume: a longitudinal run interrupted mid-epoch —
// mid-*campaign*, via the executor's stop_after_rounds kill stand-in —
// and resumed on a fresh scenario + fresh process must publish a final
// snapshot byte-identical to an uninterrupted run. State crosses the
// "kill" only through the state_dir: per-epoch snapshot files, the framed
// driver-state record, and the executor's own campaign checkpoint. The
// world itself is never persisted; resume replays churn deterministically.
#include "eval/longitudinal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "scenario/presets.h"
#include "util/parallel.h"

namespace geoloc::eval {
namespace {

namespace fs = std::filesystem;

template <typename Fn>
auto at_threads(unsigned threads, Fn&& fn) {
  util::set_thread_count(threads);
  auto result = fn();
  util::set_thread_count(0);
  return result;
}

scenario::ScenarioConfig base_config() {
  auto cfg = scenario::small_config();
  cfg.cache_dir = "";
  return cfg;
}

LongitudinalConfig small_run() {
  LongitudinalConfig cfg;
  cfg.epochs = 3;
  cfg.lookups_per_epoch = 64;
  cfg.budget_prefixes = 12;
  cfg.vps_per_target = 4;
  cfg.packets = 2;
  // 12 prefixes x 4 VPs = 48 requests; 3 rounds of 16, so an
  // interrupt_after_rounds=1 kill lands mid-campaign with work left.
  cfg.campaign_batch = 16;
  cfg.churn.prefix_reassignment_rate = 0.08;
  return cfg;
}

class LongitudinalResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("geoloc-long-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// A fresh "process": new scenario, new driver invocation; only the
  /// state_dir carries anything across.
  LongitudinalResult process(RemeasurePolicy policy, LongitudinalConfig cfg) {
    cfg.state_dir = dir_.string();
    scenario::Scenario s(base_config());
    return run_longitudinal(s, policy, cfg);
  }

  fs::path dir_;
};

TEST_F(LongitudinalResumeTest, KillMidEpochThenResumeMatchesUninterrupted) {
  const LongitudinalResult reference = [] {
    scenario::Scenario s(base_config());
    return run_longitudinal(s, RemeasurePolicy::DiffTriggered, small_run());
  }();
  ASSERT_FALSE(reference.final_snapshot_bytes.empty());

  LongitudinalConfig killed = small_run();
  killed.interrupt_epoch = 2;
  killed.interrupt_after_rounds = 1;
  const LongitudinalResult interrupted =
      process(RemeasurePolicy::DiffTriggered, killed);
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.completed_epochs, 1u);

  const LongitudinalResult resumed =
      process(RemeasurePolicy::DiffTriggered, small_run());
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.completed_epochs, 3u);
  EXPECT_EQ(resumed.final_snapshot_bytes, reference.final_snapshot_bytes);
  EXPECT_EQ(resumed.total_credits, reference.total_credits);
}

TEST_F(LongitudinalResumeTest, ChainedKillsStillConverge) {
  const LongitudinalResult reference = [] {
    scenario::Scenario s(base_config());
    return run_longitudinal(s, RemeasurePolicy::TtlExpiry, small_run());
  }();

  // Kill during epoch 1, then again during epoch 3, then finish.
  LongitudinalConfig kill1 = small_run();
  kill1.interrupt_epoch = 1;
  EXPECT_TRUE(process(RemeasurePolicy::TtlExpiry, kill1).interrupted);

  LongitudinalConfig kill3 = small_run();
  kill3.interrupt_epoch = 3;
  const LongitudinalResult mid = process(RemeasurePolicy::TtlExpiry, kill3);
  EXPECT_TRUE(mid.interrupted);
  EXPECT_EQ(mid.completed_epochs, 2u);

  const LongitudinalResult done =
      process(RemeasurePolicy::TtlExpiry, small_run());
  EXPECT_FALSE(done.interrupted);
  EXPECT_EQ(done.final_snapshot_bytes, reference.final_snapshot_bytes);
  EXPECT_EQ(done.total_credits, reference.total_credits);
}

TEST_F(LongitudinalResumeTest, ResumeIsThreadCountInvariant) {
  const LongitudinalResult reference = at_threads(1, [] {
    scenario::Scenario s(base_config());
    return run_longitudinal(s, RemeasurePolicy::StalenessQueue, small_run());
  });

  LongitudinalConfig killed = small_run();
  killed.interrupt_epoch = 2;
  EXPECT_TRUE(at_threads(8, [&] {
                return process(RemeasurePolicy::StalenessQueue, killed);
              }).interrupted);
  const LongitudinalResult resumed = at_threads(8, [&] {
    return process(RemeasurePolicy::StalenessQueue, small_run());
  });
  EXPECT_EQ(resumed.final_snapshot_bytes, reference.final_snapshot_bytes);
}

TEST_F(LongitudinalResumeTest, CompletedRunResumesAsNoOp) {
  const LongitudinalResult first =
      process(RemeasurePolicy::DiffTriggered, small_run());
  EXPECT_EQ(first.completed_epochs, 3u);
  const LongitudinalResult again =
      process(RemeasurePolicy::DiffTriggered, small_run());
  EXPECT_EQ(again.completed_epochs, 3u);
  EXPECT_TRUE(again.epochs.empty());  // nothing re-executed
  EXPECT_EQ(again.final_snapshot_bytes, first.final_snapshot_bytes);
  EXPECT_EQ(again.total_credits, first.total_credits);
}

TEST_F(LongitudinalResumeTest, ForeignStateIsIgnored) {
  // A state file from a different configuration must not be resumed into.
  LongitudinalConfig other = small_run();
  other.budget_prefixes = 99;
  const LongitudinalResult theirs =
      process(RemeasurePolicy::TtlExpiry, other);
  EXPECT_EQ(theirs.completed_epochs, 3u);

  const LongitudinalResult ours =
      process(RemeasurePolicy::TtlExpiry, small_run());
  EXPECT_EQ(ours.completed_epochs, 3u);
  ASSERT_EQ(ours.epochs.size(), 3u);  // full re-run, not a bogus resume

  const LongitudinalResult reference = [] {
    scenario::Scenario s(base_config());
    return run_longitudinal(s, RemeasurePolicy::TtlExpiry, small_run());
  }();
  EXPECT_EQ(ours.final_snapshot_bytes, reference.final_snapshot_bytes);
}

TEST_F(LongitudinalResumeTest, CorruptStateFallsBackToFreshRun) {
  LongitudinalConfig killed = small_run();
  killed.interrupt_epoch = 2;
  EXPECT_TRUE(process(RemeasurePolicy::TtlExpiry, killed).interrupted);
  {
    // Scribble over the driver state; the framed read must reject it and
    // the driver restart from the bootstrap rather than crash or trust it.
    std::ofstream out(dir_ / "longitudinal.state",
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  const LongitudinalResult r =
      process(RemeasurePolicy::TtlExpiry, small_run());
  EXPECT_FALSE(r.interrupted);
  EXPECT_EQ(r.completed_epochs, 3u);

  const LongitudinalResult reference = [] {
    scenario::Scenario s(base_config());
    return run_longitudinal(s, RemeasurePolicy::TtlExpiry, small_run());
  }();
  EXPECT_EQ(r.final_snapshot_bytes, reference.final_snapshot_bytes);
}

}  // namespace
}  // namespace geoloc::eval
