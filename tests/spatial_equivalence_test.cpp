// The central contract of the spatial subsystem: every call site routed
// through the interval index returns *exactly* what the legacy linear /
// hash-grid scan returned — same contents, same order, on every input,
// including the degenerate ones (poles, anti-meridian, cell boundaries,
// malformed zips, empty worlds).

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <vector>

#include "dataset/population_grid.h"
#include "geo/geopoint.h"
#include "landmark/ecosystem.h"
#include "landmark/mapping_service.h"
#include "sim/world.h"
#include "test_scenario.h"

namespace geoloc {
namespace {

using landmark::WebEcosystem;
using landmark::WebsiteId;

std::vector<WebsiteId> to_vector(std::span<const WebsiteId> s) {
  return {s.begin(), s.end()};
}

/// Query points that exercise every geometric edge the index must handle.
std::vector<geo::GeoPoint> edge_points() {
  std::vector<geo::GeoPoint> pts = {
      {90.0, 0.0},      {-90.0, 0.0},        // poles
      {90.0, 180.0},    {-90.0, -180.0},     // pole + date-line corners
      {0.0, 180.0},     {0.0, -180.0},       // anti-meridian
      {10.0, 179.95},   {-10.0, -179.95},    // near the seam
      {0.0, 0.0},                            // origin (face boundary)
      {0.0, -0.0001},                        // just west of Greenwich
      {89.999, 45.0},   {-89.999, -45.0},    // near-polar
  };
  // Exact multiples of the 0.045-degree zip cell and the 1-degree
  // ecosystem cell — points *on* grid lines.
  for (const double lat : {0.045, 0.09, 45.0, -33.0}) {
    for (const double lon : {0.045, -0.045, 120.0, -73.0}) {
      pts.push_back({lat, lon});
    }
  }
  return pts;
}

TEST(SpatialEquivalence, WebsitesInZipMatchesScanForEveryRecordedZip) {
  const auto& s = testing::small_scenario();
  const WebEcosystem& eco = s.web();
  ASSERT_GT(eco.total_count(), 0u);

  std::set<std::string> zips;
  for (const auto& w : eco.websites()) zips.insert(w.recorded_zip);
  ASSERT_FALSE(zips.empty());
  for (const std::string& zip : zips) {
    const auto indexed = to_vector(eco.websites_in_zip(zip));
    const auto scanned = eco.websites_in_zip_scan(zip);
    ASSERT_EQ(indexed, scanned) << zip;
    EXPECT_FALSE(indexed.empty()) << zip;
  }
}

TEST(SpatialEquivalence, WebsitesInZipMatchesScanForForeignAndGarbageZips) {
  const auto& s = testing::small_scenario();
  const WebEcosystem& eco = s.web();
  const landmark::MappingService& mapping = s.mapping();

  std::vector<std::string> zips;
  for (const geo::GeoPoint& p : edge_points()) {
    zips.push_back(mapping.zone_of(p));
  }
  zips.insert(zips.end(), {"", "garbage", "Z1x2", "Z00001x00002junk",
                           "Z-0001x00002", "Z99999x99999", "Z00000x00000"});
  for (const std::string& zip : zips) {
    EXPECT_EQ(to_vector(eco.websites_in_zip(zip)),
              eco.websites_in_zip_scan(zip))
        << "\"" << zip << "\"";
  }
}

TEST(SpatialEquivalence, WebsitesNearZipConcatenatesNeighborZones) {
  const auto& s = testing::small_scenario();
  const WebEcosystem& eco = s.web();
  const landmark::MappingService& mapping = s.mapping();

  int checked = 0;
  for (const auto& w : eco.websites()) {
    if (++checked > 50) break;
    const auto got = eco.websites_near_zip(mapping, w.recorded_zip);
    std::vector<WebsiteId> want;
    for (const std::string& zone : mapping.neighbor_zones(w.recorded_zip)) {
      const auto scanned = eco.websites_in_zip_scan(zone);
      want.insert(want.end(), scanned.begin(), scanned.end());
    }
    ASSERT_EQ(got, want) << w.recorded_zip;
  }
}

TEST(SpatialEquivalence, PassingNearMatchesScanAtScenarioPlaces) {
  const auto& s = testing::small_scenario();
  const WebEcosystem& eco = s.web();
  ASSERT_GT(eco.passing_count(), 0u);

  std::mt19937 rng(42);
  std::uniform_real_distribution<double> jitter(-0.8, 0.8);
  int checked = 0;
  for (const sim::Place& place : s.world().places()) {
    if (++checked > 40) break;
    for (const double radius_km : {1.0, 25.0, 120.0, 400.0}) {
      const geo::GeoPoint q{place.location.lat_deg + jitter(rng),
                            geo::normalize_lon(place.location.lon_deg +
                                               jitter(rng))};
      const auto indexed = eco.passing_near(q, radius_km);
      const auto scanned = eco.passing_near_scan(q, radius_km);
      ASSERT_EQ(indexed, scanned)
          << q.lat_deg << "," << q.lon_deg << " r=" << radius_km;
    }
  }
}

TEST(SpatialEquivalence, PassingNearMatchesScanAtGeometricEdges) {
  const auto& s = testing::small_scenario();
  const WebEcosystem& eco = s.web();
  for (const geo::GeoPoint& q : edge_points()) {
    for (const double radius_km : {0.0, 5.0, 200.0, 2000.0}) {
      EXPECT_EQ(eco.passing_near(q, radius_km),
                eco.passing_near_scan(q, radius_km))
          << q.lat_deg << "," << q.lon_deg << " r=" << radius_km;
    }
  }
}

TEST(SpatialEquivalence, ReverseGeocodeAgreesWithZoneArithmeticEverywhere) {
  const landmark::MappingService mapping;
  const spatial::ZipGrid& grid = mapping.grid();
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> lat(-90.0, 90.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  std::vector<geo::GeoPoint> pts = edge_points();
  for (int i = 0; i < 500; ++i) pts.push_back({lat(rng), lon(rng)});
  for (const geo::GeoPoint& p : pts) {
    const std::string zip = mapping.reverse_geocode(p);
    EXPECT_EQ(zip, grid.format(grid.key_of(p)))
        << p.lat_deg << "," << p.lon_deg;
    // Every produced zone key parses back and is in bounds — the index
    // can bucket it.
    const auto key = spatial::ZipGrid::parse(zip);
    ASSERT_TRUE(key.has_value()) << zip;
    EXPECT_TRUE(grid.in_bounds(*key)) << zip;
  }
}

TEST(SpatialEquivalence, PopulationKernelsMatchScanEverywhere) {
  const auto& s = testing::small_scenario();
  const dataset::PopulationGrid grid(s.world());
  ASSERT_GT(grid.kernel_count(), 0u);

  std::mt19937 rng(9);
  std::uniform_real_distribution<double> lat(-90.0, 90.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  std::vector<geo::GeoPoint> pts = edge_points();
  for (int i = 0; i < 200; ++i) pts.push_back({lat(rng), lon(rng)});
  for (const sim::Place& place : s.world().places()) {
    pts.push_back(place.location);
  }
  for (const geo::GeoPoint& p : pts) {
    ASSERT_EQ(grid.kernel_indices_near(p), grid.kernel_indices_near_scan(p))
        << p.lat_deg << "," << p.lon_deg;
  }
}

TEST(SpatialEquivalence, EmptyEcosystemQueriesAgreeOnEmpty) {
  // A config that produces zero websites: the index is empty, and every
  // query — including the degenerate ones — must agree with the scan on
  // "nothing here".
  sim::World world;
  const landmark::MappingService mapping;
  landmark::EcosystemConfig cfg;
  cfg.websites_per_1k_pop = 0.0;
  cfg.min_websites_per_city = 0;
  cfg.max_websites_per_place = 0;
  const WebEcosystem eco = WebEcosystem::build(world, mapping, cfg);
  EXPECT_EQ(eco.total_count(), 0u);
  EXPECT_EQ(eco.passing_count(), 0u);
  for (const geo::GeoPoint& q : edge_points()) {
    EXPECT_TRUE(eco.passing_near(q, 500.0).empty());
    EXPECT_EQ(eco.passing_near(q, 500.0), eco.passing_near_scan(q, 500.0));
    const std::string zip = mapping.zone_of(q);
    EXPECT_TRUE(eco.websites_in_zip(zip).empty());
    EXPECT_EQ(to_vector(eco.websites_in_zip(zip)),
              eco.websites_in_zip_scan(zip));
    EXPECT_EQ(eco.websites_near_zip(mapping, zip),
              std::vector<WebsiteId>{});
  }
}

}  // namespace
}  // namespace geoloc
