#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace geoloc::util {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(CsvEscape, PlainFieldsUntouched) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("42.5"), "42.5");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesWhenNeeded) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, WritesRows) {
  const std::string path = ::testing::TempDir() + "csv-test.csv";
  {
    CsvWriter w(path);
    ASSERT_TRUE(w.ok());
    w.row({"name", "value"});
    w.row({"a,b", "2"});
    w.numeric_row({1.5, 2.25});
    EXPECT_EQ(w.rows_written(), 3u);
  }
  const std::string content = slurp(path);
  EXPECT_EQ(content, "name,value\n\"a,b\",2\n1.5,2.25\n");
  std::remove(path.c_str());
}

TEST(CsvWriter, BadPathReportsNotOk) {
  CsvWriter w("/nonexistent-dir/file.csv");
  EXPECT_FALSE(w.ok());
  w.row({"x"});  // must not crash
  EXPECT_EQ(w.rows_written(), 0u);
}

TEST(CsvExportEnv, RespectsEnvironment) {
  unsetenv("GEOLOC_EXPORT_DIR");
  EXPECT_FALSE(export_dir_from_env().has_value());
  EXPECT_FALSE(maybe_csv("test").has_value());

  const std::string dir = ::testing::TempDir() + "geoloc-export-test";
  setenv("GEOLOC_EXPORT_DIR", dir.c_str(), 1);
  const auto got = export_dir_from_env();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, dir);
  auto w = maybe_csv("probe");
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->ok());
  unsetenv("GEOLOC_EXPORT_DIR");
}

}  // namespace
}  // namespace geoloc::util
