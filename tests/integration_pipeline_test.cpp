// Cross-module integration: the relationships between techniques that the
// paper's narrative depends on, checked end-to-end on the small scenario.
#include <gtest/gtest.h>

#include "core/geodb.h"
#include "core/million_scale.h"
#include "core/multi_round.h"
#include "core/shortest_ping.h"
#include "core/single_radius.h"
#include "core/street_level.h"
#include "eval/experiments.h"
#include "eval/metrics.h"
#include "eval/street_campaign.h"
#include "geo/geodesy.h"
#include "test_scenario.h"
#include "util/stats.h"

namespace geoloc {
namespace {

using geoloc::testing::small_scenario;

std::vector<std::size_t> all_rows(const scenario::Scenario& s) {
  std::vector<std::size_t> rows(s.vps().size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  return rows;
}

TEST(Integration, CbgAndShortestPingAgreeInOrderOfMagnitude) {
  // The paper's footnote: "results with shortest ping are similar".
  const auto& s = small_scenario();
  const core::MillionScale tools(s);
  const auto rows = all_rows(s);
  std::vector<double> cbg, sp;
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const auto obs = tools.observations(rows, col);
    const auto c = core::cbg_geolocate(obs);
    const auto p = core::shortest_ping(obs);
    if (c.ok && p) {
      cbg.push_back(tools.error_km(c.estimate, col));
      sp.push_back(tools.error_km(p->estimate, col));
    }
  }
  const double mc = util::median(cbg), mp = util::median(sp);
  EXPECT_LT(mc, mp * 3.0);
  EXPECT_LT(mp, mc * 3.0);
}

TEST(Integration, SingleRadiusAnsweredSubsetIsMoreAccurate) {
  // Abstention buys precision: where single-radius answers, its error is
  // bounded by the RTT budget's disk.
  const auto& s = small_scenario();
  const core::MillionScale tools(s);
  const auto rows = all_rows(s);
  std::vector<double> answered;
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const auto obs = tools.observations(rows, col);
    if (const auto r = core::single_radius(obs)) {
      answered.push_back(tools.error_km(r->estimate, col));
      EXPECT_LE(answered.back(),
                geo::rtt_to_max_distance_km(r->min_rtt_ms,
                                            geo::kSoiTwoThirdsKmPerMs) +
                    1.0);
    }
  }
  ASSERT_GT(answered.size(), 10u);
  std::vector<double> cbg;
  for (double e : eval::all_vp_errors(s)) {
    if (e >= 0) cbg.push_back(e);
  }
  EXPECT_LE(util::median(answered), util::median(cbg) * 1.5);
}

TEST(Integration, TwoStepAndMultiRoundAgree) {
  // Multi-round with rounds=2 is structurally the paper's two-step scheme;
  // both pick VPs from the same machinery and should land close together.
  const auto& s = small_scenario();
  const core::MillionScale tools(s);
  const auto greedy = core::greedy_coverage_rows(s, 50);
  const core::TwoStepSelector two_step(s, greedy);
  core::MultiRoundConfig cfg;
  cfg.rounds = 2;
  cfg.first_round_size = 50;
  const core::MultiRoundSelector multi(s, cfg);

  std::vector<double> ts_err, mr_err;
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const auto a = two_step.run(col);
    const auto b = multi.run(col);
    if (a.ok) ts_err.push_back(tools.error_km(a.estimate, col));
    if (b.ok) mr_err.push_back(tools.error_km(b.estimate, col));
  }
  EXPECT_LT(std::abs(util::median(ts_err) - util::median(mr_err)),
            std::max(util::median(ts_err), util::median(mr_err)));
}

TEST(Integration, GeoDbOrderingMatchesFigure7) {
  const auto& s = small_scenario();
  auto errors_of = [&](core::GeoDbProfile p) {
    const auto db = core::GeoDatabase::build(s, p);
    std::vector<double> e;
    for (sim::HostId t : s.targets()) {
      const auto hit = db.lookup(s.world().host(t).addr);
      if (hit) {
        e.push_back(geo::distance_km(hit->location,
                                     s.world().host(t).true_location));
      }
    }
    return e;
  };
  const double ipinfo =
      eval::city_level_fraction(errors_of(core::GeoDbProfile::IPinfo));
  const double maxmind =
      eval::city_level_fraction(errors_of(core::GeoDbProfile::MaxMindFree));
  std::vector<double> cbg;
  for (double e : eval::all_vp_errors(s)) {
    if (e >= 0) cbg.push_back(e);
  }
  // Figure 7 ordering: IPinfo > CBG > MaxMind at city level.
  EXPECT_GT(ipinfo, eval::city_level_fraction(cbg));
  EXPECT_GT(eval::city_level_fraction(cbg), maxmind);
}

TEST(Integration, StreetCampaignConsistentWithDirectRuns) {
  const auto& s = small_scenario();
  const auto& camp = eval::street_campaign(s);
  const core::StreetLevel street(s);
  for (std::size_t col : {0u, 3u, 9u}) {
    const auto run = street.geolocate(col);
    EXPECT_NEAR(camp.records[col].street_error_km,
                eval::error_km(s, col, run.estimate), 0.5);
    EXPECT_EQ(camp.records[col].tier_reached, run.tier_reached);
  }
}

TEST(Integration, BaselineSummaryIsSane) {
  // The paper's Section 7.1 baseline: most targets city-level, a minority
  // street-level, using the best of CBG/street-level.
  const auto& s = small_scenario();
  const auto& camp = eval::street_campaign(s);
  std::vector<double> best;
  for (const auto& r : camp.records) {
    double e = r.street_error_km;
    if (r.cbg_error_km >= 0) e = std::min(e, double{r.cbg_error_km});
    best.push_back(e);
  }
  EXPECT_GT(eval::city_level_fraction(best), 0.25);
  EXPECT_LT(eval::street_level_fraction(best), 0.5);
}

TEST(Integration, DeterministicEndToEnd) {
  // Two scenarios from the same config agree on a full street-level run.
  auto cfg = scenario::small_config(/*seed=*/321);
  cfg.cache_dir = "";
  const scenario::Scenario s1(cfg);
  const scenario::Scenario s2(cfg);
  const core::StreetLevel a(s1), b(s2);
  const auto ra = a.geolocate(4);
  const auto rb = b.geolocate(4);
  EXPECT_EQ(ra.estimate, rb.estimate);
  EXPECT_EQ(ra.traceroutes, rb.traceroutes);
  EXPECT_EQ(ra.tier2.websites_tested, rb.tier2.websites_tested);
}

}  // namespace
}  // namespace geoloc
