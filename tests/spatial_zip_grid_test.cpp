#include "spatial/zip_grid.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <vector>

#include "geo/geopoint.h"

namespace geoloc::spatial {
namespace {

TEST(SpatialZipGrid, FormatsTheLegacyZoneKey) {
  const ZipGrid grid(0.045);
  EXPECT_EQ(grid.format({0, 0}), "Z00000x00000");
  EXPECT_EQ(grid.format({123, 4567}), "Z00123x04567");
  EXPECT_EQ(grid.format({12345, 67890}), "Z12345x67890");
}

TEST(SpatialZipGrid, KeyOfMatchesTheFloorFormulas) {
  const ZipGrid grid(0.045);
  const geo::GeoPoint p{48.8566, 2.3522};
  const ZipGrid::Key key = grid.key_of(p);
  EXPECT_EQ(key.lat_cell,
            static_cast<int>((p.lat_deg + 90.0) / 0.045));
  EXPECT_EQ(key.lon_cell,
            static_cast<int>((p.lon_deg + 180.0) / 0.045));
}

TEST(SpatialZipGrid, ParseRoundTripsFormat) {
  const ZipGrid grid(0.045);
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> lat(-90.0, 90.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  for (int i = 0; i < 200; ++i) {
    const ZipGrid::Key key = grid.key_of({lat(rng), lon(rng)});
    const auto parsed = ZipGrid::parse(grid.format(key));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, key);
  }
}

TEST(SpatialZipGrid, ParseAcceptsWideAndNegativeFields) {
  // The formatter emits all digits for values wider than 5 ("%05d" is a
  // minimum width), and negative cells for out-of-world floors; the parser
  // must round-trip both.
  const auto wide = ZipGrid::parse("Z123456x00001");
  ASSERT_TRUE(wide.has_value());
  EXPECT_EQ(wide->lat_cell, 123456);
  const auto negative = ZipGrid::parse("Z-0001x00002");
  ASSERT_TRUE(negative.has_value());
  EXPECT_EQ(negative->lat_cell, -1);
  EXPECT_EQ(negative->lon_cell, 2);
}

TEST(SpatialZipGrid, ParseRejectsMalformedKeys) {
  for (const char* bad : {
           "",                 // empty
           "Z",                // no fields
           "Z1x2",             // fields too short
           "Z0001x00002",      // lat field only 4 chars
           "Z00001x0002",      // lon field only 4 chars
           "z00001x00002",     // lowercase prefix
           "00001x00002",      // missing prefix
           "Z00001y00002",     // wrong separator
           "Z00001x00002junk", // trailing garbage
           "Z00001x00002 ",    // trailing space
           "Z 0001x00002",     // embedded space
           "Z+0001x00002",     // explicit plus sign
           "Zabcdex00002",     // non-numeric field
           "Z00001x",          // missing lon field
           "Z00001x00002x3",   // extra separator
       }) {
    EXPECT_FALSE(ZipGrid::parse(bad).has_value()) << "\"" << bad << "\"";
  }
}

TEST(SpatialZipGrid, InBoundsTracksTheWorldExtent) {
  // cell_deg 0.25 is exact in binary: the world is exactly 720 x 1440
  // cells, and key_of(lat 90, lon 180) floors to cell 720 / 1440 — the
  // boundary keys in_bounds must admit.
  const ZipGrid grid(0.25);
  EXPECT_TRUE(grid.in_bounds({0, 0}));
  EXPECT_TRUE(grid.in_bounds({720, 1440}));
  EXPECT_EQ(grid.key_of({90.0, 180.0}), (ZipGrid::Key{720, 1440}));
  EXPECT_FALSE(grid.in_bounds({-1, 0}));
  EXPECT_FALSE(grid.in_bounds({0, -1}));
  EXPECT_FALSE(grid.in_bounds({721, 0}));
  EXPECT_FALSE(grid.in_bounds({0, 1441}));
}

TEST(SpatialZipGrid, RepresentativeLiesInTheZone) {
  const ZipGrid grid(0.045);
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> lat(-90.0, 90.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  for (int i = 0; i < 300; ++i) {
    const geo::GeoPoint p{lat(rng), lon(rng)};
    const ZipGrid::Key key = grid.key_of(p);
    const geo::GeoPoint rep = grid.representative(key);
    EXPECT_EQ(grid.key_of(rep), key)
        << "rep of " << grid.format(key) << " left the zone";
  }
}

TEST(SpatialZipGrid, TokensAreInjectiveIncludingBoundaryZones) {
  // Zones at latitude 90 / longitude 180 must not collapse onto zone 0 or
  // onto their inland neighbours: the zip index keys buckets by token.
  const ZipGrid grid(0.25);
  const int max_lat = 720;
  const int max_lon = 1440;
  std::set<std::uint64_t> tokens;
  std::vector<ZipGrid::Key> keys;
  for (const int lat_cell : {0, 1, max_lat / 2, max_lat - 1, max_lat}) {
    for (const int lon_cell : {0, 1, max_lon / 2, max_lon - 1, max_lon}) {
      keys.push_back({lat_cell, lon_cell});
    }
  }
  for (const ZipGrid::Key& key : keys) {
    ASSERT_TRUE(grid.in_bounds(key)) << grid.format(key);
    tokens.insert(grid.token(key));
  }
  EXPECT_EQ(tokens.size(), keys.size());
}

TEST(SpatialZipGrid, TokenOfZipComposesParseBoundsAndToken) {
  const ZipGrid grid(0.045);
  const geo::GeoPoint p{40.7128, -74.0060};
  const std::string zip = grid.format(grid.key_of(p));
  const auto tok = grid.token_of_zip(zip);
  ASSERT_TRUE(tok.has_value());
  EXPECT_EQ(*tok, grid.token(grid.key_of(p)));
  EXPECT_FALSE(grid.token_of_zip("garbage"));
  EXPECT_FALSE(grid.token_of_zip("Z-0001x00002"));  // parses, out of world
  EXPECT_FALSE(grid.token_of_zip("Z99999x99999"));  // far past the extent
}

TEST(SpatialZipGrid, NeighborZonesKeepTheLegacyScanOrder) {
  const ZipGrid grid(0.045);
  const auto zones = grid.neighbor_zones("Z02000x03000");
  ASSERT_EQ(zones.size(), 9u);
  // (dlat, dlon) scans dlat -1..1 outer, dlon -1..1 inner.
  EXPECT_EQ(zones[0], "Z01999x02999");
  EXPECT_EQ(zones[1], "Z01999x03000");
  EXPECT_EQ(zones[4], "Z02000x03000");
  EXPECT_EQ(zones[8], "Z02001x03001");
}

TEST(SpatialZipGrid, NeighborZonesOfMalformedKeyEchoTheKey) {
  const ZipGrid grid(0.045);
  const auto zones = grid.neighbor_zones("not-a-zone");
  ASSERT_EQ(zones.size(), 1u);
  EXPECT_EQ(zones[0], "not-a-zone");
}

}  // namespace
}  // namespace geoloc::spatial
