#include "core/multi_round.h"

#include <gtest/gtest.h>

#include "core/million_scale.h"
#include "test_scenario.h"
#include "util/stats.h"

namespace geoloc::core {
namespace {

using geoloc::testing::small_scenario;

TEST(MultiRound, ConfigClampsToTwoRounds) {
  MultiRoundConfig cfg;
  cfg.rounds = 0;
  const MultiRoundSelector selector(small_scenario(), cfg);
  EXPECT_EQ(selector.config().rounds, 2);
}

TEST(MultiRound, RunsAndAccountsEveryRound) {
  MultiRoundConfig cfg;
  cfg.rounds = 3;
  cfg.first_round_size = 40;
  const MultiRoundSelector selector(small_scenario(), cfg);
  const MultiRoundOutcome o = selector.run(0);
  ASSERT_TRUE(o.ok);
  EXPECT_EQ(o.rounds_executed, 3);
  EXPECT_EQ(o.candidates_per_round.size(), 3u);
  EXPECT_DOUBLE_EQ(o.elapsed_seconds, 3 * cfg.api_round_seconds);
  EXPECT_GT(o.total_pings, 0u);
}

TEST(MultiRound, CandidateSetsShrink) {
  MultiRoundConfig cfg;
  cfg.rounds = 4;
  cfg.first_round_size = 60;
  const MultiRoundSelector selector(small_scenario(), cfg);
  const MultiRoundOutcome o = selector.run(1);
  ASSERT_TRUE(o.ok);
  for (std::size_t i = 1; i < o.candidates_per_round.size(); ++i) {
    EXPECT_LE(o.candidates_per_round[i], cfg.first_round_size);
  }
}

TEST(MultiRound, NeverPicksTheTarget) {
  MultiRoundConfig cfg;
  cfg.first_round_size = 40;
  const MultiRoundSelector selector(small_scenario(), cfg);
  const auto& s = small_scenario();
  for (std::size_t col = 0; col < 20; ++col) {
    const MultiRoundOutcome o = selector.run(col);
    if (o.ok) EXPECT_NE(s.vps()[o.chosen_row], s.targets()[col]);
  }
}

TEST(MultiRound, AccuracyComparableToTwoStep) {
  const auto& s = small_scenario();
  const MillionScale tools(s);
  MultiRoundConfig cfg;
  cfg.rounds = 3;
  cfg.first_round_size = 50;
  const MultiRoundSelector selector(s, cfg);
  std::vector<double> errors;
  for (std::size_t col = 0; col < s.targets().size(); ++col) {
    const MultiRoundOutcome o = selector.run(col);
    if (o.ok) errors.push_back(tools.error_km(o.estimate, col));
  }
  ASSERT_GT(errors.size(), s.targets().size() * 8 / 10);
  EXPECT_LT(util::median(errors), 250.0);
}

TEST(MultiRound, MoreRoundsCostMoreLatencyNotMorePings) {
  const auto& s = small_scenario();
  MultiRoundConfig two;
  two.rounds = 2;
  two.first_round_size = 80;
  MultiRoundConfig four = two;
  four.rounds = 4;
  const MultiRoundSelector s2(s, two), s4(s, four);
  std::uint64_t pings2 = 0, pings4 = 0;
  double lat2 = 0, lat4 = 0;
  for (std::size_t col = 0; col < 30; ++col) {
    const auto o2 = s2.run(col), o4 = s4.run(col);
    pings2 += o2.total_pings;
    pings4 += o4.total_pings;
    lat2 += o2.elapsed_seconds;
    lat4 += o4.elapsed_seconds;
  }
  EXPECT_GT(lat4, lat2);
  // Extra rounds re-probe ever-smaller candidate sets, so the ping total
  // grows only modestly (well under the per-round first step each time).
  EXPECT_LT(pings4, pings2 * 2);
}

TEST(MultiRound, DeterministicPerTarget) {
  MultiRoundConfig cfg;
  cfg.first_round_size = 30;
  const MultiRoundSelector selector(small_scenario(), cfg);
  const auto a = selector.run(3);
  const auto b = selector.run(3);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.chosen_row, b.chosen_row);
  EXPECT_EQ(a.total_pings, b.total_pings);
}

}  // namespace
}  // namespace geoloc::core
