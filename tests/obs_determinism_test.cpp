// The zero-perturbation contract (DESIGN.md §10): turning the obs layer's
// tracing on or off, at any thread count, must not move a single byte of
// any experiment output. Metrics writers only touch registry-owned
// atomics and spans only record wall durations, so a CampaignReport, an
// eval sweep and a published snapshot must be bit-identical across
// {trace off, trace on} x {1 thread, 8 threads}.
//
// Fresh scenarios (disk cache disabled, no web ecosystem) per run, same
// as parallel_determinism_test.cpp, so nothing leaks between settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "atlas/executor.h"
#include "eval/experiments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "publish/compile.h"
#include "publish/snapshot.h"
#include "scenario/presets.h"
#include "scenario/scenario.h"
#include "util/parallel.h"

namespace geoloc {
namespace {

scenario::ScenarioConfig fresh_config() {
  auto cfg = scenario::small_config();
  cfg.cache_dir = "";     // never mix results through the disk cache
  cfg.build_web = false;  // the web ecosystem plays no part here
  return cfg;
}

/// Run fn at `threads` workers with tracing forced to `trace`, restoring
/// both to their defaults (pool default size, tracing off) afterwards.
template <typename Fn>
auto with_obs(bool trace, unsigned threads, Fn&& fn) {
  obs::set_trace_enabled(trace);
  util::set_thread_count(threads);
  auto result = fn();
  util::set_thread_count(0);
  obs::set_trace_enabled(false);
  (void)obs::flush_spans();  // drop whatever the run recorded
  return result;
}

void expect_reports_equal(const atlas::CampaignReport& a,
                          const atlas::CampaignReport& b) {
  EXPECT_EQ(a.requested, b.requested);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.rejections, b.rejections);
  EXPECT_EQ(a.no_replies, b.no_replies);
  EXPECT_EQ(a.outage_deferrals, b.outage_deferrals);
  EXPECT_EQ(a.vp_reassignments, b.vp_reassignments);
  EXPECT_EQ(a.round_failures, b.round_failures);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.credits_spent, b.credits_spent);
  EXPECT_EQ(a.credits_wasted, b.credits_wasted);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.backoff_wait_s, b.backoff_wait_s);
  ASSERT_EQ(a.results.size(), b.results.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].vp != b.results[i].vp ||
        a.results[i].target != b.results[i].target ||
        a.results[i].min_rtt_ms != b.results[i].min_rtt_ms ||
        a.results[i].packets_received != b.results[i].packets_received) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

TEST(ObsDeterminismTest, StormyCampaignReportInvariantUnderTracing) {
  const scenario::Scenario s(fresh_config());
  const std::size_t vp_count = std::min<std::size_t>(s.vps().size(), 60);
  const std::span<const sim::HostId> vps(s.vps().data(), vp_count);
  const std::span<const sim::HostId> spares(s.vps().data() + vp_count,
                                            s.vps().size() - vp_count);
  const auto run = [&](bool trace, unsigned threads) {
    return with_obs(trace, threads, [&] {
      atlas::Platform platform(s.world(), s.latency());
      const atlas::FaultModel faults(s.world(), scenario::stormy_weather());
      platform.set_fault_model(&faults);
      atlas::CampaignExecutor executor(platform);
      return executor.execute_full_mesh(vps, s.targets(), 3, spares);
    });
  };
  const atlas::CampaignReport baseline = run(/*trace=*/false, /*threads=*/1);
  expect_reports_equal(baseline, run(/*trace=*/true, /*threads=*/1));
  expect_reports_equal(baseline, run(/*trace=*/true, /*threads=*/8));
}

TEST(ObsDeterminismTest, EvalSweepInvariantUnderTracing) {
  const scenario::Scenario s(fresh_config());
  (void)s.target_rtts();  // shared pre-materialisation, as in the eval tests
  (void)s.representative_rtts();
  const int sizes[] = {50, 150};
  const auto run = [&](bool trace, unsigned threads) {
    return with_obs(trace, threads, [&] {
      return eval::run_subset_size_sweep(s, sizes, /*trials=*/3);
    });
  };
  const auto baseline = run(/*trace=*/false, /*threads=*/1);
  for (const auto& [trace, threads] :
       {std::pair{true, 1u}, std::pair{true, 8u}, std::pair{false, 8u}}) {
    const auto other = run(trace, threads);
    ASSERT_EQ(baseline.size(), other.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(baseline[i].subset_size, other[i].subset_size);
      EXPECT_EQ(baseline[i].trial_median_errors_km,
                other[i].trial_median_errors_km);
    }
  }
}

TEST(ObsDeterminismTest, SnapshotBytesInvariantUnderTracing) {
  // Full pipeline per setting: fresh scenario, matrix materialisation,
  // record compilation, serialization — every instrumented layer runs
  // under the setting being tested.
  const auto build_bytes = [](bool trace, unsigned threads) {
    return with_obs(trace, threads, [] {
      const scenario::Scenario s(fresh_config());
      publish::SnapshotBuilder builder;
      builder.add(publish::compile_entries(s));
      return builder.build(publish::SnapshotMeta{
          .dataset_version = 1, .source = "obs determinism test"});
    });
  };
  const std::vector<std::byte> baseline =
      build_bytes(/*trace=*/false, /*threads=*/1);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, build_bytes(/*trace=*/true, /*threads=*/1));
  EXPECT_EQ(baseline, build_bytes(/*trace=*/true, /*threads=*/8));
  EXPECT_EQ(baseline, build_bytes(/*trace=*/false, /*threads=*/8));
}

}  // namespace
}  // namespace geoloc
