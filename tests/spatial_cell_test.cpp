#include "spatial/cell.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "geo/geopoint.h"

namespace geoloc::spatial {
namespace {

std::mt19937 rng(20230415);

geo::GeoPoint random_point() {
  std::uniform_real_distribution<double> lat(-90.0, 90.0);
  std::uniform_real_distribution<double> lon(-180.0, 180.0);
  return geo::GeoPoint{lat(rng), lon(rng)};
}

TEST(SpatialCell, FromPointContainsThePoint) {
  for (int i = 0; i < 500; ++i) {
    const geo::GeoPoint p = random_point();
    for (int level : {0, 1, 5, 12, kMaxLevel}) {
      const CellId cell = CellId::from_point(p, level);
      ASSERT_TRUE(cell.valid()) << cell.to_string();
      EXPECT_LE(cell.lat_lo(), p.lat_deg);
      EXPECT_GE(cell.lat_hi(), p.lat_deg);
      EXPECT_LE(cell.lon_lo(), p.lon_deg);
      EXPECT_GE(cell.lon_hi(), p.lon_deg);
      EXPECT_TRUE(cell.contains(p)) << cell.to_string();
    }
  }
}

TEST(SpatialCell, TwoFacesSplitTheWorldAtGreenwich) {
  EXPECT_EQ(CellId::from_point({0.0, -0.001}, 0).face(), 0);
  EXPECT_EQ(CellId::from_point({0.0, 0.0}, 0).face(), 1);
  EXPECT_EQ(CellId::from_point({0.0, -180.0}, 0).face(), 0);
  EXPECT_EQ(CellId::from_point({0.0, 179.999}, 0).face(), 1);
}

TEST(SpatialCell, BoundaryPointsClampIntoValidCells) {
  // Latitude 90 and longitude 180 are valid GeoPoints; they must land in
  // the last row/column, never in an out-of-range cell.
  for (int level : {0, 3, 10, kMaxLevel}) {
    for (const geo::GeoPoint p : {geo::GeoPoint{90.0, 0.0},
                                  geo::GeoPoint{-90.0, -180.0},
                                  geo::GeoPoint{90.0, 180.0},
                                  geo::GeoPoint{45.0, 180.0}}) {
      const CellId cell = CellId::from_point(p, level);
      EXPECT_TRUE(cell.valid())
          << cell.to_string() << " for " << p.lat_deg << "," << p.lon_deg;
    }
  }
}

TEST(SpatialCell, ParentChildRoundTrip) {
  for (int i = 0; i < 200; ++i) {
    const geo::GeoPoint p = random_point();
    const CellId cell = CellId::from_point(p, 9);
    for (int k = 0; k < 4; ++k) {
      const CellId child = cell.child(k);
      ASSERT_TRUE(child.valid());
      EXPECT_EQ(child.parent(), cell);
      EXPECT_TRUE(cell.contains(child));
      EXPECT_FALSE(child.contains(cell));
    }
    // from_point at level L+1 yields one of the four children.
    const CellId deeper = CellId::from_point(p, 10);
    EXPECT_EQ(deeper.parent(), cell);
  }
}

TEST(SpatialCell, ChildTokensPartitionTheParentInterval) {
  for (int i = 0; i < 200; ++i) {
    const CellId cell = CellId::from_point(random_point(), 7);
    std::uint64_t cursor = cell.token_lo();
    for (int k = 0; k < 4; ++k) {
      const CellId child = cell.child(k);
      EXPECT_EQ(child.token_lo(), cursor) << "child " << k;
      cursor = child.token_hi();
    }
    EXPECT_EQ(cursor, cell.token_hi());
  }
}

TEST(SpatialCell, TokenIntervalNestsWithContainment) {
  for (int i = 0; i < 300; ++i) {
    const geo::GeoPoint p = random_point();
    const CellId coarse = CellId::from_point(p, 4);
    const CellId fine = CellId::from_point(p, 15);
    ASSERT_TRUE(coarse.contains(fine));
    EXPECT_LE(coarse.token_lo(), fine.token_lo());
    EXPECT_GE(coarse.token_hi(), fine.token_hi());
    // The leaf token of the point falls inside both intervals.
    const std::uint64_t leaf = CellId::leaf_token(p);
    EXPECT_GE(leaf, fine.token_lo());
    EXPECT_LT(leaf, fine.token_hi());
  }
}

TEST(SpatialCell, LeafTokensAreDistinctForSeparatedPoints) {
  // Leaf cells span ~19 m; points a degree apart never share one.
  std::set<std::uint64_t> tokens;
  for (int lat = -89; lat <= 89; lat += 7) {
    for (int lon = -179; lon <= 179; lon += 11) {
      tokens.insert(CellId::leaf_token(
          {static_cast<double>(lat), static_cast<double>(lon)}));
    }
  }
  EXPECT_EQ(tokens.size(), static_cast<std::size_t>(26 * 33));
}

TEST(SpatialCell, SiblingCellsAreDisjointByToken) {
  const CellId cell = CellId::from_point({12.3, 45.6}, 6);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      const CellId ca = cell.child(a);
      const CellId cb = cell.child(b);
      EXPECT_LE(ca.token_hi(), cb.token_lo());
      EXPECT_FALSE(ca.contains(cb));
      EXPECT_FALSE(cb.contains(ca));
    }
  }
}

TEST(SpatialCell, MortonDilationInterleavesBits) {
  EXPECT_EQ(detail::dilate20(0), 0ULL);
  EXPECT_EQ(detail::dilate20(1), 1ULL);
  EXPECT_EQ(detail::dilate20(0b11), 0b101ULL);
  EXPECT_EQ(detail::dilate20(0b101), 0b10001ULL);
  EXPECT_EQ(detail::dilate20(0xFFFFF), 0x5555555555ULL);
  EXPECT_EQ(detail::morton(0, 1), 1ULL);
  EXPECT_EQ(detail::morton(1, 0), 2ULL);
  EXPECT_EQ(detail::morton(0xFFFFF, 0xFFFFF), 0xFFFFFFFFFFULL);
}

TEST(SpatialCell, InvalidDefaultAndAccessors) {
  EXPECT_FALSE(CellId{}.valid());
  const CellId cell{3, 1, 2, 5};
  EXPECT_EQ(cell.level(), 3);
  EXPECT_EQ(cell.face(), 1);
  EXPECT_EQ(cell.i(), 2u);
  EXPECT_EQ(cell.j(), 5u);
  EXPECT_DOUBLE_EQ(cell.size_deg(), 22.5);
  EXPECT_EQ(cell.to_string(), "L3/f1/2,5");
  EXPECT_FALSE(CellId(3, 1, 8, 0).valid());  // i out of range for level 3
  EXPECT_FALSE(CellId(3, 2, 0, 0).valid());  // no third face
}

TEST(SpatialCell, CenterLiesInsideTheCell) {
  for (int i = 0; i < 200; ++i) {
    const CellId cell = CellId::from_point(random_point(), 8);
    EXPECT_TRUE(cell.contains(cell.center())) << cell.to_string();
  }
}

}  // namespace
}  // namespace geoloc::spatial
